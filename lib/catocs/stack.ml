type 'a callbacks = {
  deliver : sender:Engine.pid -> 'a -> unit;
  view_change : Group.view -> unit;
  member_failed : Engine.pid -> unit;
  direct : src:Engine.pid -> 'a -> unit;
}

let null_callbacks =
  { deliver = (fun ~sender:_ _ -> ());
    view_change = (fun _ -> ());
    member_failed = (fun _ -> ());
    direct = (fun ~src:_ _ -> ()) }

(* Chaos hook: drop the [ordering/forward_copies] registry increment while
   still sending the copy (and its hop event). The copy-conservation
   watchdog must then flag the census/counter mismatch — the conviction
   test for the metrics battery. *)
let chaos_drop_forward_copy_metric = ref false

type shared = {
  group_id : int;
  shared_config : Config.t;
  graph : Causality.t option;
  obs : Repro_obs.Log.t option;
      (* one telemetry log for the whole group: events carry the pid *)
  mutable next_msg_id : int;
  id_index : (int * int * int, Wire.msg_id) Hashtbl.t;
      (* (view_id, rank, per-sender seq) -> msg_id, for graph arcs *)
}

let next_group_id = Atomic.make 0

let make_shared ?group_id ?obs (config : Config.t) =
  let group_id =
    match group_id with
    | Some id -> id
    | None -> Atomic.fetch_and_add next_group_id 1 + 1
  in
  { group_id; shared_config = config;
    graph = (if config.Config.track_graph then Some (Causality.create ()) else None);
    obs;
    next_msg_id = 0;
    id_index = Hashtbl.create 256 }

let shared_graph shared = shared.graph
let shared_obs shared = shared.obs
let group_id shared = shared.group_id

type flush_state = {
  new_view_id : int;
  survivors : Engine.pid list;  (* flush participants: current live members *)
  survivor_set : Pid_set.t;  (* same pids, for O(log n) membership *)
  new_members : Engine.pid list;  (* survivors plus any admitted joiners *)
  mutable flush_from : Pid_set.t;
  mutable done_from : Pid_set.t;  (* coordinator only *)
  mutable done_sent : bool;
  started_at : Sim_time.t;
}

type join_state = {
  mutable pending_view : (int * Engine.pid list) option;
  mutable pending_state : (int * string) option;
}

type status = Normal | Flushing of flush_state | Joining of join_state

(* Per-stack registry cells, registered once at stack creation so every
   hot-path update is a single store ([Config.metrics] off hands back scrap
   cells — same discipline as a disabled [Obs.Log]). The six copy counters
   use the exact conservation vocabulary [Obs.Watch.copy_conservation]
   audits against the hop census in the telemetry log. *)
type reg_cells = {
  registry : Repro_obs.Registry.t;
  origin_copies : Repro_obs.Registry.counter;
  forward_copies : Repro_obs.Registry.counter;
  drain_copies : Repro_obs.Registry.counter;
  resend_copies : Repro_obs.Registry.counter;
  suppressed_copies : Repro_obs.Registry.counter;
  parked_copies : Repro_obs.Registry.counter;
  delivery_latency : Repro_obs.Histo.t;  (* ordering/delivery_latency_us *)
  gossip_msgs : Repro_obs.Registry.counter;
  c_flushes : Repro_obs.Registry.counter;
  c_view_changes : Repro_obs.Registry.counter;
  encoded_bytes : Repro_obs.Registry.counter;  (* real encoded copy bytes *)
  modeled_bytes : Repro_obs.Registry.counter;  (* structural model, same copies *)
  g_queue_depth : Repro_obs.Registry.gauge;
  g_blocked_msgs : Repro_obs.Registry.gauge;
  g_unstable_msgs : Repro_obs.Registry.gauge;
  g_unstable_bytes : Repro_obs.Registry.gauge;
}

let make_reg_cells (config : Config.t) =
  let registry =
    Repro_obs.Registry.create ~enabled:config.Config.metrics ()
  in
  (* literal [~name]s at the [Registry.*] call sites: repro-lint's
     metric-coverage contract inventories exactly these and requires each
     spelling to be pinned by a test *)
  let open Repro_obs in
  let o = Event.Ordering in
  { registry;
    origin_copies = Registry.counter registry ~layer:o ~name:"origin_copies" ();
    forward_copies =
      Registry.counter registry ~layer:o ~name:"forward_copies" ();
    drain_copies = Registry.counter registry ~layer:o ~name:"drain_copies" ();
    resend_copies = Registry.counter registry ~layer:o ~name:"resend_copies" ();
    suppressed_copies =
      Registry.counter registry ~layer:o ~name:"suppressed_copies" ();
    parked_copies = Registry.counter registry ~layer:o ~name:"parked_copies" ();
    delivery_latency =
      Registry.histogram registry ~layer:o ~name:"delivery_latency_us" ();
    gossip_msgs =
      Registry.counter registry ~layer:Event.Stability ~name:"gossip_msgs" ();
    c_flushes =
      Registry.counter registry ~layer:Event.View ~name:"flushes" ();
    c_view_changes =
      Registry.counter registry ~layer:Event.View ~name:"view_changes" ();
    encoded_bytes =
      Registry.counter registry ~layer:Event.Transport ~name:"encoded_bytes" ();
    modeled_bytes =
      Registry.counter registry ~layer:Event.Transport ~name:"modeled_bytes" ();
    g_queue_depth = Registry.gauge registry ~layer:o ~name:"queue_depth" ();
    g_blocked_msgs = Registry.gauge registry ~layer:o ~name:"blocked_msgs" ();
    g_unstable_msgs =
      Registry.gauge registry ~layer:Event.Stability ~name:"unstable_msgs" ();
    g_unstable_bytes =
      Registry.gauge registry ~layer:Event.Stability ~name:"unstable_bytes" () }

type 'a t = {
  engine : 'a Wire.t Transport.packet Engine.t;
  shared : shared;
  config : Config.t;
  self : Engine.pid;
  mutable callbacks : 'a callbacks;
  metrics : Metrics.t;
  cells : reg_cells;
  bytes_of : ('a Wire.data -> int) option;
      (* [Config.Encoded]: charge unstable-bytes gauges with real encoded
         sizes ([Wire_codec.data_bytes]); [None] keeps the header
         estimates *)
  parallel_ids : bool;
      (* parallel engine: msg_ids come from the per-stack counter below
         (seq and pid packed into the integer) instead of the group-shared
         counter, whose allocation order would depend on cross-lane
         interleaving *)
  mutable own_msg_seq : int;
  lamport : Lamport.t;
  delivered_ids : (Wire.msg_id, unit) Hashtbl.t;
  causal_seen : (Wire.msg_id, unit) Hashtbl.t;
      (* messages already causally delivered (vc advanced, handed to the
         total-order queues). Distinct from [delivered_ids]: in the
         sequencer/Lamport modes a message sits between causal and final
         delivery until its order arrives, and a duplicate copy arriving in
         that window must not re-run causal delivery — re-applying the vc
         update for an own-message duplicate can move the clock backwards
         and wedge every later message from that sender *)
  mutable endpoint : 'a Endpoint.t option;  (* set right after creation *)
  mutable view : Group.view;
  mutable rank : int;
  mutable vc : Vector_clock.t;
  mutable pc : Pc_causal.t option;
      (* PC-broadcast causal-layer state (overlay, link barrier, arrival
         records); [Some] iff [Config.pc_active config]. Rebuilt on every
         view install. In PC mode [vc] is not wire-carried: it is
         reconstructed from delivery order (component [o] = highest
         contiguously delivered origin sequence of rank [o]), which keeps
         the gossip/stability/flush machinery working unchanged. *)
  mutable hybrid : 'a Hybrid_causal.t option;
      (* hybrid-buffering refinements over the PC substrate (per-link
         delivered-knowledge and park buffers); [Some] iff
         [Config.hybrid_active config]. Rebuilt with [pc] on every view
         install. *)
  mutable queue : 'a Delivery_queue.t;
  mutable seq_queue : 'a Total_order.Sequencer_queue.t;
  mutable lamport_queue : 'a Total_order.Lamport_queue.t;
  mutable stability : 'a Stability.t;
  mutable next_global_seq : int;
  mutable status : status;
  mutable outbox : 'a list;
  mutable installing : bool;
      (* inside install_view/install_join: application callbacks fire while
         the outbox is not yet drained, so multicasts they issue must keep
         queueing or they would be stamped ahead of sends suppressed during
         the flush — a per-sender FIFO inversion *)
  mutable failed_members : Pid_set.t;
  mutable deferred_lamport_gossip : (int * int * int) list;
      (* (rank, required per-sender seq, lamport time): a gossiped Lamport
         time may only gate total-order release once every data message the
         gossiper had sent has been delivered here, otherwise an in-flight
         message with a smaller stamp could be overtaken *)
  mutable future_proto : (int * 'a Wire.proto) list;
      (* data/order messages from a view this member has not installed yet:
         peers that finish the flush first may multicast in the new view
         before our New_view arrives; dropping them would leave a permanent
         causal gap *)
  mutable replay_proto : 'a Wire.proto -> unit;
      (* re-entry into the protocol handler, tied after its definition *)
  mutable pending_joins : Engine.pid list;
      (* join requests received during a flush, admitted in the next round *)
  mutable trigger_pending_joins : unit -> unit;
  mutable get_state : unit -> string;
      (* application state snapshot handed to joiners (see
         set_state_handlers) *)
  mutable set_state : string -> unit;
  mutable cancel_gossip : unit -> unit;
  mutable ejected : bool;
      (* removed from the group by its peers (crash, or false suspicion
         under heartbeat detection): the stack is inert; re-join with a
         fresh stack *)
  mutable eject : unit -> unit;  (* tied after callbacks exist *)
  last_seen : (Engine.pid, Sim_time.t) Hashtbl.t;
      (* heartbeat detection: last protocol message per peer *)
}

let queue_mode (config : Config.t) =
  if Config.pc_active config then
    (* PC-broadcast: FIFO links plus forward-on-first-delivery make each
       link's receive order causally consistent, so a per-origin contiguity
       gate is all the delivery condition needs — no vector comparison *)
    Delivery_queue.Fifo_gap
  else
    match config.Config.ordering with
    | Config.Fifo | Config.Total_lamport -> Delivery_queue.Fifo_gap
    | Config.Causal | Config.Total_sequencer -> Delivery_queue.Causal_full

let queue_impl (config : Config.t) =
  match config.Config.queue_impl with
  | Config.Indexed_queue -> Delivery_queue.Indexed
  | Config.Reference_queue -> Delivery_queue.Reference

let make_queue ?obs (config : Config.t) =
  Delivery_queue.create ~impl:(queue_impl config) ?obs (queue_mode config)

let stability_impl (config : Config.t) =
  match config.Config.stability_impl with
  | Config.Incremental_stability -> Stability.Incremental
  | Config.Reference_stability -> Stability.Reference

let stability_clock (config : Config.t) =
  match config.Config.stability_clock with
  | Config.Dense_clock -> Group_clock.Dense
  | Config.Sparse_clock -> Group_clock.Sparse

let make_stability ?obs ?bytes_of ?registry (config : Config.t) ~group_size
    ~metrics ~graph =
  Stability.create ~impl:(stability_impl config)
    ~clock:(stability_clock config) ?bytes_of ?obs ?registry ~group_size
    ~metrics ~graph ()

let self t = t.self
let shared_of t = t.shared
let config_of t = t.config
let view t = t.view
let rank t = t.rank
let metrics t = t.metrics
let registry t = t.cells.registry
let vector_clock t = t.vc
let unstable_count t = Stability.unstable_count t.stability
let unstable_bytes t = Stability.unstable_bytes t.stability
let set_callbacks t callbacks = t.callbacks <- callbacks

(* all three summands are maintained counters, so this is safe to call from
   periodic metrics samplers without touching queue contents *)
let pending_count t =
  Delivery_queue.length t.queue
  + Total_order.Sequencer_queue.data_count t.seq_queue
  + Total_order.Lamport_queue.length t.lamport_queue

(* telemetry: (log, owner pid) pair handed to the per-stack queues *)
let obs_pair shared ~self =
  match shared.obs with Some log -> Some (log, self) | None -> None

(* Causal-path hop records: one event per physical copy decision, so the
   full dissemination tree of a multicast is reconstructable from the log
   (see [Obs.Trace_tree]). Callers also bump the matching conservation
   counter; [Obs.Watch.copy_conservation] cross-checks the two. *)
let note_hop_send t ~uid ~dst kind =
  match t.shared.obs with
  | Some log when Repro_obs.Log.enabled log ->
    Repro_obs.Log.hop_send log ~at:(Engine.now t.engine) ~uid ~pid:t.self ~dst
      kind
  | _ -> ()

let note_hop_suppress t ~uid ~dst =
  match t.shared.obs with
  | Some log when Repro_obs.Log.enabled log ->
    Repro_obs.Log.hop_suppress log ~at:(Engine.now t.engine) ~uid ~pid:t.self
      ~dst
  | _ -> ()

let note_hop_park t ~uid ~dst =
  match t.shared.obs with
  | Some log when Repro_obs.Log.enabled log ->
    Repro_obs.Log.hop_park log ~at:(Engine.now t.engine) ~uid ~pid:t.self ~dst
  | _ -> ()

let note_flush_start t ~view_id =
  match t.shared.obs with
  | Some log ->
    Repro_obs.Log.flush_start log ~at:(Engine.now t.engine) ~pid:t.self
      ~view_id
  | None -> ()

let note_flush_end t ~view_id =
  match t.shared.obs with
  | Some log ->
    Repro_obs.Log.flush_end log ~at:(Engine.now t.engine) ~pid:t.self ~view_id
  | None -> ()

(* One gauge sample per tracked quantity; wire to [Engine.every] for the
   periodic time series the scaling experiments export. All four summands
   are maintained counters, so a sample is O(1). *)
let record_gauges t =
  if Repro_obs.Registry.enabled t.cells.registry then begin
    Repro_obs.Registry.set t.cells.g_unstable_msgs
      (Stability.unstable_count t.stability);
    Repro_obs.Registry.set t.cells.g_unstable_bytes
      (Stability.unstable_bytes t.stability);
    Repro_obs.Registry.set t.cells.g_queue_depth
      (Delivery_queue.length t.queue);
    Repro_obs.Registry.set t.cells.g_blocked_msgs (pending_count t)
  end;
  match t.shared.obs with
  | None -> ()
  | Some log ->
    if Repro_obs.Log.enabled log then begin
      let at = Engine.now t.engine in
      Repro_obs.Log.gauge log ~at ~pid:t.self Repro_obs.Event.Unstable_msgs
        (Stability.unstable_count t.stability);
      Repro_obs.Log.gauge log ~at ~pid:t.self Repro_obs.Event.Unstable_bytes
        (Stability.unstable_bytes t.stability);
      Repro_obs.Log.gauge log ~at ~pid:t.self Repro_obs.Event.Queue_depth
        (Delivery_queue.length t.queue);
      Repro_obs.Log.gauge log ~at ~pid:t.self Repro_obs.Event.Blocked_msgs
        (pending_count t)
    end

let is_ejected t = t.ejected

let is_flushing t =
  match t.status with Normal -> false | Flushing _ | Joining _ -> true

let endpoint t =
  match t.endpoint with
  | Some e -> e
  | None -> invalid_arg "Stack: endpoint not initialised"

(* allocation-free fan-out over the view: the hot multicast/broadcast paths
   must not build an (n-1)-element recipient list per message *)
let iter_other_members t f =
  let members = t.view.Group.members in
  for i = 0 to Array.length members - 1 do
    let p = Array.unsafe_get members i in
    if p <> t.self then f p
  done

let broadcast_proto t proto =
  iter_other_members t (fun dst ->
      Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst proto)

(* --- PC-broadcast wiring ------------------------------------------------- *)

(* (Re)build the PC overlay state for the current view. [prev_members] holds
   the members of the view this install replaced: a link between two
   carried-over members stays open (its FIFO channel never broke and the
   flush made their message sets agree), while a link involving a member new
   to the view starts closed and runs the ping/pong barrier before data
   flows on it. At initial group creation every member is "carried over", so
   all links start open and no pings are sent. *)
let reset_pc t ~prev_members =
  if not (Config.pc_active t.config) then begin
    t.pc <- None;
    t.hybrid <- None
  end
  else begin
    let view = t.view in
    let self_fresh = not (Pid_set.mem t.self prev_members) in
    let link_fresh peer_rank =
      self_fresh || not (Pid_set.mem (Group.member view peer_rank) prev_members)
    in
    let pc =
      Pc_causal.create t.config ~rank:t.rank ~group_size:(Group.size view)
        ~link_fresh
    in
    t.pc <- Some pc;
    t.hybrid <-
      (if Config.hybrid_active t.config then
         Some
           (Hybrid_causal.create ~group_size:(Group.size view)
              ~neighbors:(Pc_causal.neighbors pc))
       else None);
    let stats = Pc_causal.stats pc in
    List.iter
      (fun peer_rank ->
        stats.Pc_causal.pings_sent <- stats.Pc_causal.pings_sent + 1;
        t.metrics.Metrics.control_messages <-
          t.metrics.Metrics.control_messages + 1;
        Endpoint.send_proto (endpoint t) ~group:t.shared.group_id
          ~dst:(Group.member view peer_rank)
          (Wire.Pc_ping { view_id = view.Group.view_id; from_rank = t.rank }))
      (Pc_causal.fresh_links pc)
  end

let pc_stats t = Option.map Pc_causal.stats t.pc

let pc_neighbors t = Option.map Pc_causal.neighbors t.pc

let hybrid_stats t = Option.map Hybrid_causal.stats t.hybrid

(* --- graph bookkeeping (Section 5 active causal graph) ----------------- *)

let register_in_graph t (data : 'a Wire.data) =
  match t.shared.graph with
  | None -> ()
  | Some graph ->
    let vt = data.Wire.vt in
    let view_id = data.Wire.view_id in
    let sender = data.Wire.sender_rank in
    let deps = ref [] in
    for r = 0 to Vector_clock.size vt - 1 do
      let seq = if r = sender then Vector_clock.get vt r - 1 else Vector_clock.get vt r in
      if seq > 0 then
        match Hashtbl.find_opt t.shared.id_index (view_id, r, seq) with
        | Some dep -> deps := dep :: !deps
        | None -> ()
    done;
    Hashtbl.replace t.shared.id_index
      (view_id, sender, Vector_clock.get vt sender)
      data.Wire.msg_id;
    Causality.add_message graph ~id:data.Wire.msg_id ~deps:!deps

(* --- delivery ----------------------------------------------------------- *)

let final_deliver t (pending : 'a Delivery_queue.pending) =
  let data = pending.Delivery_queue.data in
  if not (Hashtbl.mem t.delivered_ids data.Wire.msg_id) then begin
    Hashtbl.add t.delivered_ids data.Wire.msg_id ();
    t.metrics.Metrics.delivered <- t.metrics.Metrics.delivered + 1;
    let now = Engine.now t.engine in
    let wait = Sim_time.sub now pending.Delivery_queue.arrived_at in
    Stats.Summary.add t.metrics.Metrics.delivery_delay_us (float_of_int wait);
    Stats.Summary.add t.metrics.Metrics.transit_us
      (float_of_int (Sim_time.sub now data.Wire.sent_at));
    if Repro_obs.Registry.enabled t.cells.registry then
      Repro_obs.Histo.add t.cells.delivery_latency
        (float_of_int (Sim_time.sub now data.Wire.sent_at));
    if wait > 0 then
      t.metrics.Metrics.delayed_messages <- t.metrics.Metrics.delayed_messages + 1;
    (* the label is formatted eagerly, so skip it entirely when tracing is
       off — this runs once per delivery *)
    let trace = Engine.trace t.engine in
    if Trace.enabled trace then
      Trace.record trace now ~pid:t.self Trace.Deliver
        (Format.asprintf "msg#%d" data.Wire.msg_id);
    (match t.shared.obs with
     | Some log ->
       Repro_obs.Log.span_delivered log ~at:now ~uid:data.Wire.msg_id
         ~pid:t.self
     | None -> ());
    t.callbacks.deliver ~sender:data.Wire.origin data.Wire.payload
  end

let release_total_queues t =
  (match t.config.Config.ordering with
   | Config.Total_sequencer ->
     let rec loop () =
       match Total_order.Sequencer_queue.take_ready t.seq_queue with
       | Some pending -> final_deliver t pending; loop ()
       | None -> ()
     in
     loop ()
   | Config.Total_lamport ->
     (* our own logical clock bounds our own future stamps *)
     Total_order.Lamport_queue.observe_time t.lamport_queue ~rank:t.rank
       (Lamport.value t.lamport);
     let rec loop () =
       match Total_order.Lamport_queue.take_ready t.lamport_queue with
       | Some pending -> final_deliver t pending; loop ()
       | None -> ()
     in
     loop ()
   | Config.Fifo | Config.Causal -> ())

let sequencer_pid t = Group.member t.view 0

let causal_deliver t (pending : 'a Delivery_queue.pending) =
  let data = pending.Delivery_queue.data in
  if Hashtbl.mem t.causal_seen data.Wire.msg_id then ()
  else begin
  Hashtbl.add t.causal_seen data.Wire.msg_id ();
  (* Advance only the sender's component: in Causal_full mode this equals a
     full merge (the delivery condition guarantees vt(k) <= local(k) for
     k <> sender); in Fifo_gap mode a full merge would overstate which
     messages from third parties we have delivered. *)
  let sender = data.Wire.sender_rank in
  let sender_seq = Vector_clock.get data.Wire.vt sender in
  Vector_clock.set t.vc sender sender_seq;
  (* PC/Hybrid stamps are nonzero only at the sender's own component, so
     both stability merges below collapse to single cells — the delivery
     hot path stays O(1) in group size instead of O(n) per message. *)
  (match data.Wire.meta with
   | Wire.Pc_meta _ | Wire.Hybrid_meta _ ->
     Stability.note_delivered_diag t.stability data
   | Wire.Fifo_meta | Wire.Causal_meta | Wire.Seq_meta | Wire.Lamport_meta _ ->
     Stability.note_sent_or_delivered t.stability data);
  Stability.self_observe_cell t.stability ~rank:t.rank ~col:sender
    ~seq:sender_seq ~now:(Engine.now t.engine);
  (* PC forward-on-first-delivery. This must run BEFORE the application
     callback below: a reaction multicast issued synchronously from the
     delivery would otherwise be sent ahead of this message's forwarded
     copy on shared FIFO links, and a neighbor could deliver the reaction
     before its trigger — exactly the causal inversion PC's structural
     argument forbids. Forwarding a message we are about to deliver is
     safe: it is causally deliverable here, hence on our outgoing links. *)
  (match t.pc with
   | None -> ()
   | Some pc ->
     let from_rank = Pc_causal.take_arrival pc data.Wire.msg_id in
     if data.Wire.origin <> t.self then begin
       match t.status with
       | Normal ->
         let stats = Pc_causal.stats pc in
         let send_forward r =
           stats.Pc_causal.forwards <- stats.Pc_causal.forwards + 1;
           if not !chaos_drop_forward_copy_metric then
             Repro_obs.Registry.incr t.cells.forward_copies;
           t.metrics.Metrics.header_bytes <-
             t.metrics.Metrics.header_bytes + Wire.header_bytes data;
           let dst = Group.member t.view r in
           note_hop_send t ~uid:data.Wire.msg_id ~dst
             Repro_obs.Event.Forward_copy;
           Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst
             (Wire.Data data)
         in
         let targets =
           Pc_causal.forward_targets pc ~from_rank ~origin_rank:sender
         in
         (match t.hybrid with
          | None -> List.iter send_forward targets
          | Some h ->
            (* delivered-knowledge suppression: skip peers that provably
               already delivered this message (the copy would be dropped
               as a duplicate on arrival) *)
            let seq = Pc_causal.origin_seq data in
            List.iter
              (fun r ->
                if Hybrid_causal.needs_copy h ~peer:r ~origin:sender ~seq
                then send_forward r
                else begin
                  Hybrid_causal.note_suppressed h;
                  Repro_obs.Registry.incr t.cells.suppressed_copies;
                  note_hop_suppress t ~uid:data.Wire.msg_id
                    ~dst:(Group.member t.view r)
                end)
              targets;
            (* barrier-pending links are absent from [targets]: park their
               copies for the pong-triggered drain instead of falling back
               to the unstable-buffer rescan *)
            List.iter
              (fun r ->
                if r <> from_rank && r <> sender then begin
                  Hybrid_causal.park h ~peer:r data;
                  Repro_obs.Registry.incr t.cells.parked_copies;
                  note_hop_park t ~uid:data.Wire.msg_id
                    ~dst:(Group.member t.view r)
                end)
              (Pc_causal.fresh_links pc))
       | Flushing _ | Joining _ ->
         (* the flush round itself disseminates the message set *)
         ()
     end);
  match t.config.Config.ordering with
  | Config.Fifo | Config.Causal -> final_deliver t pending
  | Config.Total_sequencer ->
    Total_order.Sequencer_queue.add_data t.seq_queue pending;
    if t.self = sequencer_pid t then begin
      let global_seq = t.next_global_seq in
      t.next_global_seq <- global_seq + 1;
      let order =
        Wire.Seq_order
          { view_id = t.view.Group.view_id; msg_id = data.Wire.msg_id; global_seq }
      in
      t.metrics.Metrics.control_messages <-
        t.metrics.Metrics.control_messages + Group.size t.view - 1;
      broadcast_proto t order;
      Total_order.Sequencer_queue.add_order t.seq_queue
        ~msg_id:data.Wire.msg_id ~global_seq
    end
  | Config.Total_lamport ->
    (match data.Wire.meta with
     | Wire.Lamport_meta stamp ->
       Total_order.Lamport_queue.add t.lamport_queue pending ~stamp;
       Total_order.Lamport_queue.observe_time t.lamport_queue
         ~rank:data.Wire.sender_rank stamp.Lamport.time
     | Wire.Fifo_meta | Wire.Causal_meta | Wire.Seq_meta | Wire.Pc_meta _
     | Wire.Hybrid_meta _ ->
       (* a misconfigured peer; deliver FIFO to stay live *)
       final_deliver t pending)
  end

let apply_deferred_gossip t =
  let applicable, still_deferred =
    List.partition
      (fun (rank, required, _) -> Vector_clock.get t.vc rank >= required)
      t.deferred_lamport_gossip
  in
  t.deferred_lamport_gossip <- still_deferred;
  List.iter
    (fun (rank, _, time) ->
      Total_order.Lamport_queue.observe_time t.lamport_queue ~rank time)
    applicable

let drain_deliverables t =
  let rec loop () =
    match Delivery_queue.take_deliverable t.queue ~local:t.vc with
    | Some pending ->
      causal_deliver t pending;
      loop ()
    | None -> ()
  in
  loop ();
  apply_deferred_gossip t;
  release_total_queues t

let rec on_data t ?(src_rank = -1) (data : 'a Wire.data) =
  (* piggybacked predecessors are just data messages: feed them through the
     same path (duplicates are dropped by the delivered/seen-ids check) *)
  List.iter (fun d -> on_data t d) data.Wire.piggyback;
  t.metrics.Metrics.data_received <- t.metrics.Metrics.data_received + 1;
  (* hybrid delivered-knowledge: every copy arriving from a peer — first
     copy or duplicate alike — proves the peer delivered it before
     sending *)
  (match t.hybrid with
   | Some h when src_rank >= 0 && data.Wire.view_id = t.view.Group.view_id ->
     Hybrid_causal.note_copy h ~peer:src_rank ~origin:data.Wire.sender_rank
       ~seq:(Pc_causal.origin_seq data)
   | _ -> ());
  if data.Wire.view_id > t.view.Group.view_id then
    t.future_proto <-
      (data.Wire.view_id, Wire.Data data) :: t.future_proto
  else if data.Wire.view_id = t.view.Group.view_id
          && not (Hashtbl.mem t.delivered_ids data.Wire.msg_id)
          && not (Hashtbl.mem t.causal_seen data.Wire.msg_id)
  then begin
    match t.pc with
    | Some pc when Pc_causal.is_queued pc data.Wire.msg_id ->
      (* PC's forwarding redundancy: a copy of a message already sitting in
         the delivery queue; drop it before it reaches the queue *)
      Pc_causal.note_duplicate pc
    | _ ->
    (match data.Wire.meta with
     | Wire.Lamport_meta stamp -> ignore (Lamport.observe t.lamport stamp.Lamport.time)
     | Wire.Fifo_meta | Wire.Causal_meta | Wire.Seq_meta | Wire.Pc_meta _
     | Wire.Hybrid_meta _ -> ());
    let pending =
      { Delivery_queue.data; arrived_at = Engine.now t.engine }
    in
    (match t.shared.obs with
     | Some log ->
       Repro_obs.Log.span_recv log ~at:pending.Delivery_queue.arrived_at
         ~uid:data.Wire.msg_id ~pid:t.self
     | None -> ());
    if data.Wire.origin = t.self then begin
      (* A sender's own multicast is deliverable by construction — its
         dependencies are exactly what the sender had delivered when it was
         stamped — so it bypasses the delivery condition. Routing it through
         the queue instead can deadlock: a reaction multicast issued from a
         delivery that lands between another own-message's stamping and its
         local delivery would reuse the same sender sequence number (the
         clock had not advanced yet), and one of the twins then never
         satisfies the FIFO-gap condition anywhere. *)
      causal_deliver t pending;
      drain_deliverables t
    end
    else begin
      (match t.pc with
       | Some pc ->
         (* record the arrival link so the forward on delivery can skip it *)
         Pc_causal.note_queued pc ~msg_id:data.Wire.msg_id ~from_rank:src_rank
       | None -> ());
      Delivery_queue.add t.queue pending;
      drain_deliverables t
    end
  end
  else
    match t.pc with
    | Some pc when data.Wire.view_id = t.view.Group.view_id ->
      (* redundant copy of an already-delivered message *)
      Pc_causal.note_duplicate pc
    | _ -> ()

(* --- multicast ---------------------------------------------------------- *)

(* parallel msg_id layout: seq * 2^20 + pid — globally unique for up to a
   million processes, and independent of cross-member allocation order *)
let msg_id_pid_limit = 1 lsl 20

let make_data t payload =
  let msg_id =
    if t.parallel_ids then begin
      let seq = t.own_msg_seq in
      t.own_msg_seq <- seq + 1;
      (seq * msg_id_pid_limit) + t.self
    end
    else begin
      let id = t.shared.next_msg_id in
      t.shared.next_msg_id <- id + 1;
      id
    end
  in
  (match t.shared.obs with
   | Some log ->
     Repro_obs.Log.span_send log ~at:(Engine.now t.engine) ~uid:msg_id
       ~pid:t.self ~bytes:t.config.Config.payload_bytes
   | None -> ());
  (* one immutable snapshot per multicast, shared by every recipient *)
  let vt, meta =
    match t.pc with
    | Some _ ->
      (* PC mode: the wire carries only (origin, origin_seq). The in-memory
         vt is sparse — just our own ticked component — which is exactly
         what the delivery-queue gap check, causal_deliver's clock advance
         and the stability sender-row merge read; any receiver could
         reconstruct it locally, so it is not charged to header_bytes. *)
      let seq = Vector_clock.get t.vc t.rank + 1 in
      let vt = Vector_clock.create (Group.size t.view) in
      Vector_clock.set vt t.rank seq;
      let meta =
        if Config.hybrid_active t.config then
          Wire.Hybrid_meta { origin_seq = seq }
        else Wire.Pc_meta { origin_seq = seq }
      in
      (vt, meta)
    | None ->
      let vt = Vector_clock.copy_tick t.vc t.rank in
      let meta =
        match t.config.Config.ordering with
        | Config.Fifo -> Wire.Fifo_meta
        | Config.Causal -> Wire.Causal_meta
        | Config.Total_sequencer -> Wire.Seq_meta
        | Config.Total_lamport ->
          Wire.Lamport_meta (Lamport.stamp t.lamport ~node:t.rank)
      in
      (vt, meta)
  in
  let piggyback =
    if t.config.Config.piggyback_history then
      (* footnote 4: carry our unstable causal predecessors so receivers
         can fill gaps locally instead of waiting *)
      List.map
        (fun (d : 'a Wire.data) -> { d with Wire.piggyback = [] })
        (Stability.unstable t.stability)
    else []
  in
  { Wire.msg_id; trace_id = msg_id; origin = t.self; sender_rank = t.rank;
    view_id = t.view.Group.view_id; vt; meta; payload;
    payload_bytes = t.config.Config.payload_bytes;
    sent_at = Engine.now t.engine; piggyback }

let account_send t data ~recipient_count =
  t.metrics.Metrics.multicasts_sent <- t.metrics.Metrics.multicasts_sent + 1;
  let overhead_per_copy =
    Wire.header_bytes data + (Wire.wire_bytes data - Wire.buffered_bytes data)
  in
  t.metrics.Metrics.header_bytes <-
    t.metrics.Metrics.header_bytes + (overhead_per_copy * recipient_count);
  (* encoded-vs-modeled delta: charge both the real codec size and the
     structural byte model for the same copies, so snapshot consumers can
     read the model's error directly. The codec run is behind the enabled
     check — a disabled registry must not pay an encode per multicast. *)
  (match t.bytes_of with
   | Some real_bytes when Repro_obs.Registry.enabled t.cells.registry ->
     Repro_obs.Registry.add t.cells.encoded_bytes
       (real_bytes data * recipient_count);
     Repro_obs.Registry.add t.cells.modeled_bytes
       (Wire.wire_bytes data * recipient_count)
   | Some _ | None -> ());
  register_in_graph t data

let transmit t data ~recipients =
  account_send t data ~recipient_count:(List.length recipients);
  List.iter
    (fun dst ->
      Repro_obs.Registry.incr t.cells.origin_copies;
      note_hop_send t ~uid:data.Wire.msg_id ~dst Repro_obs.Event.Origin_copy;
      Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst
        (Wire.Data data))
    recipients;
  (* the local copy goes through the same receive path *)
  on_data t data

let do_multicast t payload =
  let data = make_data t payload in
  (match t.pc with
   | None ->
     account_send t data ~recipient_count:(Group.size t.view - 1);
     iter_other_members t (fun dst ->
         Repro_obs.Registry.incr t.cells.origin_copies;
         note_hop_send t ~uid:data.Wire.msg_id ~dst
           Repro_obs.Event.Origin_copy;
         Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst
           (Wire.Data data))
   | Some pc ->
     (* overlay dissemination: the initial copies go to our overlay
        neighbors only; forwarding on delivery carries them the rest of the
        way. Closed (barrier-pending) links are skipped — the pong-triggered
        unstable retransmission covers them. *)
     let stats = Pc_causal.stats pc in
     let sent = ref 0 in
     Array.iter
       (fun r ->
         if Pc_causal.link_open pc ~peer_rank:r then begin
           incr sent;
           let dst = Group.member t.view r in
           Repro_obs.Registry.incr t.cells.origin_copies;
           note_hop_send t ~uid:data.Wire.msg_id ~dst
             Repro_obs.Event.Origin_copy;
           Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst
             (Wire.Data data)
         end
         else begin
           stats.Pc_causal.barrier_deferred <-
             stats.Pc_causal.barrier_deferred + 1;
           (* hybrid: park the copy for the pong-triggered drain *)
           match t.hybrid with
           | Some h ->
             Hybrid_causal.park h ~peer:r data;
             Repro_obs.Registry.incr t.cells.parked_copies;
             note_hop_park t ~uid:data.Wire.msg_id
               ~dst:(Group.member t.view r)
           | None -> ()
         end)
       (Pc_causal.neighbors pc);
     account_send t data ~recipient_count:!sent);
  on_data t data

(* Transmit outbox entries in order; a multicast issued from a delivery
   callback mid-drain (while [t.installing]) re-enters the outbox and is
   picked up by the recursion, so intent order is preserved. *)
let rec drain_outbox t =
  match t.outbox with
  | [] -> t.installing <- false
  | payload :: rest ->
    t.outbox <- rest;
    do_multicast t payload;
    drain_outbox t

let multicast t payload =
  if t.ejected then ()
  else
    match t.status with
    | Normal when not t.installing -> do_multicast t payload
    | Normal | Flushing _ | Joining _ -> t.outbox <- t.outbox @ [ payload ]

let inject_partial_multicast t payload ~recipients =
  let recipients = List.filter (fun p -> p <> t.self) recipients in
  transmit t (make_data t payload) ~recipients

let send_direct t ~dst payload = Endpoint.send_direct (endpoint t) ~dst payload

(* --- gossip / stability -------------------------------------------------- *)

let send_gossip t =
  match t.status with
  | Flushing _ | Joining _ -> ()
  | Normal ->
    let proto =
      Wire.Gossip
        { view_id = t.view.Group.view_id; rank = t.rank;
          vc = Vector_clock.copy t.vc; lamport = Lamport.value t.lamport }
    in
    t.metrics.Metrics.control_messages <-
      t.metrics.Metrics.control_messages + Group.size t.view - 1;
    Repro_obs.Registry.add t.cells.gossip_msgs (Group.size t.view - 1);
    broadcast_proto t proto;
    Stability.self_observe t.stability ~rank:t.rank ~now:(Engine.now t.engine) t.vc

let on_gossip t ~view_id ~rank ~vc ~lamport =
  if view_id = t.view.Group.view_id then begin
    Stability.observe_vc t.stability ~rank ~now:(Engine.now t.engine) vc;
    (* the gossiped vector is the gossiper's delivered counts: free hybrid
       suppression knowledge *)
    (match t.hybrid with
     | Some h -> Hybrid_causal.note_delivered_vector h ~peer:rank vc
     | None -> ());
    ignore (Lamport.observe t.lamport lamport);
    let gossiper_sent = Vector_clock.get vc rank in
    if Vector_clock.get t.vc rank >= gossiper_sent then
      Total_order.Lamport_queue.observe_time t.lamport_queue ~rank lamport
    else
      t.deferred_lamport_gossip <-
        (rank, gossiper_sent, lamport) :: t.deferred_lamport_gossip;
    drain_deliverables t
  end

(* --- view change --------------------------------------------------------- *)

let coordinator_of survivors = List.fold_left min max_int survivors

let flush_complete t flush =
  List.for_all
    (fun p -> p = t.self || Pid_set.mem p flush.flush_from)
    flush.survivors

let maybe_finish_flush t flush =
  if flush_complete t flush && not flush.done_sent then begin
    flush.done_sent <- true;
    let coordinator = coordinator_of flush.survivors in
    if t.self = coordinator then
      flush.done_from <- Pid_set.add t.self flush.done_from
    else begin
      t.metrics.Metrics.control_messages <- t.metrics.Metrics.control_messages + 1;
      t.metrics.Metrics.flush_messages <- t.metrics.Metrics.flush_messages + 1;
      Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst:coordinator
        (Wire.Flush_done { new_view_id = flush.new_view_id; from = t.self })
    end
  end

let install_view t flush =
  note_flush_end t ~view_id:flush.new_view_id;
  (* Anything still blocked is undeliverable in the old view: the flush
     guaranteed every survivor holds the same message set, so dropping the
     remainder is group-consistent. This drop IS the atomicity-without-
     durability gap of Section 2. *)
  let leftover_causal = Delivery_queue.drain t.queue in
  let leftover_seq = Total_order.Sequencer_queue.pending_data t.seq_queue in
  let leftover_lamport = Total_order.Lamport_queue.pending t.lamport_queue in
  (* Sequencer/Lamport leftovers were causally delivered but unordered;
     every survivor holds the identical set, so deliver them in stamping /
     Lamport-stamp order (deterministic and identical everywhere). *)
  List.iter (final_deliver t) leftover_seq;
  List.iter (final_deliver t) leftover_lamport;
  Total_order.Sequencer_queue.clear t.seq_queue;
  Total_order.Lamport_queue.clear t.lamport_queue;
  t.metrics.Metrics.dropped_at_view_change <-
    t.metrics.Metrics.dropped_at_view_change + List.length leftover_causal;
  (match t.shared.graph with
   | Some graph ->
     List.iter
       (fun (d : 'a Wire.data) -> Causality.remove_stable graph d.Wire.msg_id)
       (Stability.unstable t.stability)
   | None -> ());
  let old_members = Array.to_list t.view.Group.members in
  if not (List.mem t.self flush.new_members) then begin
    (* the agreed view excludes us: false suspicion or late recovery *)
    t.status <- Normal;
    t.eject ()
  end
  else begin
  (* Deliver data from views this member skipped — its flush was restarted
     onto a later round before the intermediate New_view arrived. The new
     round's flush supplied every message the intermediate views' members
     delivered (nothing from those views can have stabilised, since this
     member never acknowledged them), so delivering here — in stamping
     order, which is causality-consistent under both msg-id schemes —
     keeps delivery all-or-none across the group. Dropping them instead
     would lose messages peers delivered in the skipped view. *)
  let skipped, remaining =
    List.partition (fun (vid, _) -> vid < flush.new_view_id) t.future_proto
  in
  t.future_proto <- remaining;
  skipped
  |> List.filter_map (function
       | _, Wire.Data d when not (Hashtbl.mem t.delivered_ids d.Wire.msg_id) ->
         Some d
       | _ -> None)
  |> List.sort Wire.compare_stamping
  |> List.iter (fun d ->
         final_deliver t
           { Delivery_queue.data = d; arrived_at = Engine.now t.engine });
  let new_view = Group.make_view ~view_id:flush.new_view_id flush.new_members in
  let removed = List.filter (fun p -> not (Group.mem new_view p)) old_members in
  t.view <- new_view;
  t.rank <- Group.rank_of_exn new_view t.self;
  t.vc <- Vector_clock.create (Group.size new_view);
  let obs = obs_pair t.shared ~self:t.self in
  t.queue <- make_queue ?obs t.config;
  t.seq_queue <- Total_order.Sequencer_queue.create ?obs ();
  t.lamport_queue <-
    Total_order.Lamport_queue.create ?obs ~group_size:(Group.size new_view) ();
  t.stability <-
    make_stability ?obs ?bytes_of:t.bytes_of ~registry:t.cells.registry
      t.config ~group_size:(Group.size new_view) ~metrics:t.metrics
      ~graph:t.shared.graph;
  t.next_global_seq <- 0;
  t.deferred_lamport_gossip <- [];
  t.status <- Normal;
  t.installing <- true;
  reset_pc t ~prev_members:(Pid_set.of_list old_members);
  t.metrics.Metrics.view_changes <- t.metrics.Metrics.view_changes + 1;
  Repro_obs.Registry.incr t.cells.c_view_changes;
  t.metrics.Metrics.suppressed_us <-
    t.metrics.Metrics.suppressed_us
    + Sim_time.sub (Engine.now t.engine) flush.started_at;
  List.iter (fun p -> t.callbacks.member_failed p) removed;
  t.callbacks.view_change new_view;
  (* replay messages that arrived for this view before we installed it *)
  let ready, later =
    List.partition (fun (vid, _) -> vid = new_view.Group.view_id) t.future_proto
  in
  t.future_proto <-
    List.filter (fun (vid, _) -> vid > new_view.Group.view_id) later;
  List.iter (fun (_, proto) -> t.replay_proto proto) (List.rev ready);
  drain_outbox t;
  if t.pending_joins <> [] then
    (* admit joiners that queued up during the flush in a fresh round *)
    Engine.after t.engine ~owner:t.self (Sim_time.us 1) t.trigger_pending_joins
  end

(* Enter a flush round with an agreed survivor set. The round's initiator
   computes the set; members that learn of the round from a Flush message
   adopt the set carried in it, so staggered failure detection still
   converges on one view. *)
let begin_flush t ~new_view_id ~survivors ~new_members =
  (* a restart abandons the round in progress: close its telemetry span
     before opening the new one *)
  (match t.status with
   | Flushing f when f.new_view_id <> new_view_id ->
     note_flush_end t ~view_id:f.new_view_id
   | Flushing _ | Normal | Joining _ -> ());
  note_flush_start t ~view_id:new_view_id;
  Repro_obs.Registry.incr t.cells.c_flushes;
  let survivor_set = Pid_set.of_list survivors in
  let flush =
    { new_view_id; survivors; survivor_set; new_members;
      flush_from = Pid_set.of_list [ t.self ];
      done_from = Pid_set.empty; done_sent = false;
      started_at = Engine.now t.engine }
  in
  t.status <- Flushing flush;
  (* anyone the agreed set excludes is de facto failed *)
  t.failed_members <-
    Array.fold_left
      (fun acc p ->
        if Pid_set.mem p survivor_set then acc else Pid_set.add p acc)
      t.failed_members t.view.Group.members;
  (* The flush contribution is everything this member HOLDS from the old
     view: its unstable sent-or-delivered messages, plus messages still
     blocked in its delivery queue. The queue contents matter when the
     blocking dependency arrives mid-flush (say, right after a partition
     heals): the member then delivers the blocked message during the flush,
     and if its original sender crashed, no retransmission exists — peers
     can only learn of it from this exchange. *)
  let unstable =
    Stability.unstable t.stability
    @ List.map
        (fun (p : 'a Delivery_queue.pending) -> p.Delivery_queue.data)
        (Delivery_queue.to_list t.queue)
  in
  let orders = Total_order.Sequencer_queue.known_orders t.seq_queue in
  let proto = Wire.Flush { new_view_id; survivors; unstable; orders } in
  let targets = List.filter (fun p -> p <> t.self) survivors in
  t.metrics.Metrics.control_messages <-
    t.metrics.Metrics.control_messages + List.length targets;
  t.metrics.Metrics.flush_messages <-
    t.metrics.Metrics.flush_messages + List.length targets;
  List.iter
    (fun dst ->
      Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst proto)
    targets;
  (* a member left behind on a stale round (everyone else moved on without
     it, e.g. after a false suspicion) must not hang forever *)
  Engine.after t.engine ~owner:t.self (Sim_time.seconds 1) (fun () ->
      match t.status with
      | Flushing f when f == flush -> t.eject ()
      | Flushing _ | Normal | Joining _ -> ());
  match survivors with
  | [ only ] when only = t.self ->
    (* alone: no peers to flush with; install immediately *)
    flush.done_sent <- true;
    install_view t flush
  | _ -> maybe_finish_flush t flush

(* A view change covers both directions of membership: [failed] removes a
   member (detected crash), [joined] admits new ones. The flush itself is
   always between the current live members; joiners receive the new view
   plus a state transfer once the flush completes. *)
let start_view_change t ~failed ~joined =
  (match failed with
   | Some pid -> t.failed_members <- Pid_set.add pid t.failed_members
   | None -> ());
  let joined = joined @ t.pending_joins in
  t.pending_joins <- [];
  (* a recovered process may re-join under its old pid: admitting it
     supersedes its failure record *)
  t.failed_members <-
    List.fold_left (fun acc j -> Pid_set.remove j acc) t.failed_members joined;
  let new_view_id =
    match t.status with
    | Normal | Joining _ -> t.view.Group.view_id + 1
    | Flushing f -> f.new_view_id + 1
  in
  let survivors =
    Array.to_list t.view.Group.members
    |> List.filter (fun p -> not (Pid_set.mem p t.failed_members))
  in
  let survivor_set = Pid_set.of_list survivors in
  let new_members =
    survivors
    @ List.filter
        (fun j ->
          (not (Pid_set.mem j survivor_set))
          && not (Pid_set.mem j t.failed_members))
        (List.sort_uniq Int.compare joined)
  in
  begin_flush t ~new_view_id ~survivors ~new_members

let rec on_flush t ~src ~new_view_id ~survivors ~unstable ~orders =
  (match t.status with
   | Normal when new_view_id > t.view.Group.view_id ->
     (* a peer started a view change we have no local trigger for (a join,
        or a failure we have not detected yet): adopt its round *)
     begin_flush t ~new_view_id ~survivors ~new_members:survivors
   | Flushing f when new_view_id > f.new_view_id ->
     (* the group moved on to a later round (another failure detected
        elsewhere): restart on it *)
     begin_flush t ~new_view_id ~survivors ~new_members:survivors
   | Normal | Flushing _ | Joining _ -> ());
  match t.status with
  | Flushing flush when flush.new_view_id = new_view_id ->
    (* Adopt the peer's knowledge of the sequencer's assignments before
       feeding it the data: if the sequencer crashed after reaching only
       some members, everyone must still release in its order rather than
       fall back to the view-change tiebreak for messages it had placed. *)
    List.iter
      (fun (msg_id, global_seq) ->
        Total_order.Sequencer_queue.add_order t.seq_queue ~msg_id ~global_seq)
      orders;
    List.iter (fun data -> on_data t data) unstable;
    release_total_queues t;
    flush.flush_from <- Pid_set.add src flush.flush_from;
    maybe_finish_flush t flush;
    (* the coordinator may already have everyone's done *)
    (match t.status with
     | Flushing f
       when f.new_view_id = new_view_id
            && t.self = coordinator_of f.survivors
            && Pid_set.cardinal f.done_from >= List.length f.survivors ->
       broadcast_new_view t f
     | Flushing _ | Normal | Joining _ -> ())
  | Flushing _ | Normal | Joining _ -> ()

and broadcast_new_view t flush =
  let joiners =
    List.filter
      (fun p -> not (Pid_set.mem p flush.survivor_set))
      flush.new_members
  in
  (* install first so the state snapshot reflects every old-view delivery *)
  install_view t flush;
  let proto =
    Wire.New_view { view_id = flush.new_view_id; members = flush.new_members }
  in
  let targets = List.filter (fun p -> p <> t.self) flush.new_members in
  t.metrics.Metrics.control_messages <-
    t.metrics.Metrics.control_messages + List.length targets;
  t.metrics.Metrics.flush_messages <-
    t.metrics.Metrics.flush_messages + List.length targets;
  List.iter (fun dst -> Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst proto) targets;
  (match joiners with
   | [] -> ()
   | _ :: _ ->
     let state =
       Wire.State_transfer
         { view_id = flush.new_view_id; state = t.get_state () }
     in
     t.metrics.Metrics.control_messages <-
       t.metrics.Metrics.control_messages + List.length joiners;
     t.metrics.Metrics.flush_messages <-
       t.metrics.Metrics.flush_messages + List.length joiners;
     List.iter (fun dst -> Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst state) joiners)

let on_flush_done t ~new_view_id ~from =
  match t.status with
  | Flushing flush
    when flush.new_view_id = new_view_id
         && t.self = coordinator_of flush.survivors ->
    flush.done_from <- Pid_set.add from flush.done_from;
    if Pid_set.cardinal flush.done_from >= List.length flush.survivors then
      broadcast_new_view t flush
  | Flushing _ | Normal | Joining _ -> ()

let install_join t join ~view_id ~members ~state =
  ignore join;
  let new_view = Group.make_view ~view_id members in
  t.view <- new_view;
  t.rank <- Group.rank_of_exn new_view t.self;
  t.vc <- Vector_clock.create (Group.size new_view);
  let obs = obs_pair t.shared ~self:t.self in
  t.queue <- make_queue ?obs t.config;
  t.seq_queue <- Total_order.Sequencer_queue.create ?obs ();
  t.lamport_queue <-
    Total_order.Lamport_queue.create ?obs ~group_size:(Group.size new_view) ();
  t.stability <-
    make_stability ?obs ?bytes_of:t.bytes_of ~registry:t.cells.registry
      t.config ~group_size:(Group.size new_view) ~metrics:t.metrics
      ~graph:t.shared.graph;
  t.next_global_seq <- 0;
  t.deferred_lamport_gossip <- [];
  t.status <- Normal;
  t.installing <- true;
  (* a joiner is new to every link: the full barrier runs on each of them *)
  reset_pc t ~prev_members:Pid_set.empty;
  t.set_state state;
  t.metrics.Metrics.view_changes <- t.metrics.Metrics.view_changes + 1;
  Repro_obs.Registry.incr t.cells.c_view_changes;
  t.callbacks.view_change new_view;
  let ready, later =
    List.partition (fun (vid, _) -> vid = view_id) t.future_proto
  in
  t.future_proto <- List.filter (fun (vid, _) -> vid > view_id) later;
  List.iter (fun (_, proto) -> t.replay_proto proto) (List.rev ready);
  drain_outbox t

let maybe_install_join t join =
  match (join.pending_view, join.pending_state) with
  | Some (view_id, members), Some (state_view, state) when view_id = state_view ->
    install_join t join ~view_id ~members ~state
  | _ -> ()

let on_new_view t ~view_id ~members =
  if not (List.mem t.self members) then begin
    (match t.status with
     | Flushing f ->
       note_flush_end t ~view_id:f.new_view_id;
       t.status <- Normal
     | Normal | Joining _ -> ());
    t.eject ()
  end
  else
  match t.status with
  | Flushing flush when flush.new_view_id = view_id ->
    install_view t
      { flush with survivors = members;
        survivor_set = Pid_set.of_list members; new_members = members }
  | Joining join ->
    (match join.pending_view with
     | Some (existing, _) when existing >= view_id -> ()
     | Some _ | None ->
       join.pending_view <- Some (view_id, members);
       maybe_install_join t join)
  | Flushing _ | Normal -> ()

let on_state_transfer t ~view_id ~state =
  match t.status with
  | Joining join ->
    (match join.pending_state with
     | Some (existing, _) when existing >= view_id -> ()
     | Some _ | None ->
       join.pending_state <- Some (view_id, state);
       maybe_install_join t join)
  | Flushing _ | Normal -> ()

let on_join_request t ~joiner =
  if Group.mem t.view joiner then ()
  else begin
    let coordinator = Group.coordinator t.view in
    if t.self <> coordinator then
      (* not ours to coordinate: forward *)
      Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst:coordinator
        (Wire.Join_request { joiner })
    else
      match t.status with
      | Normal -> start_view_change t ~failed:None ~joined:[ joiner ]
      | Flushing _ | Joining _ ->
        if not (List.mem joiner t.pending_joins) then
          t.pending_joins <- joiner :: t.pending_joins
  end

(* --- wiring -------------------------------------------------------------- *)

let handle_proto t ~src (proto : 'a Wire.proto) =
  if t.ejected then ()
  else begin
    if src >= 0 then Hashtbl.replace t.last_seen src (Engine.now t.engine);
    match proto with
  | Wire.Data data ->
    (* the transport-level sender (origin or PC forwarder), as a rank in the
       current view; -1 for replays and senders outside the view *)
    let src_rank =
      if src >= 0 && Group.mem t.view src then Group.rank_of_exn t.view src
      else -1
    in
    on_data t ~src_rank data
  | Wire.Pc_ping { view_id; from_rank } ->
    if view_id > t.view.Group.view_id then
      t.future_proto <- (view_id, proto) :: t.future_proto
    else if view_id = t.view.Group.view_id then (
      match t.pc with
      | Some pc ->
        let stats = Pc_causal.stats pc in
        stats.Pc_causal.pongs_sent <- stats.Pc_causal.pongs_sent + 1;
        t.metrics.Metrics.control_messages <-
          t.metrics.Metrics.control_messages + 1;
        Endpoint.send_proto (endpoint t) ~group:t.shared.group_id
          ~dst:(Group.member t.view from_rank)
          (Wire.Pc_pong
             { view_id; from_rank = t.rank;
               delivered = Vector_clock.copy t.vc })
      | None -> ())
  | Wire.Pc_pong { view_id; from_rank; delivered } ->
    if view_id > t.view.Group.view_id then
      t.future_proto <- (view_id, proto) :: t.future_proto
    else if view_id = t.view.Group.view_id then (
      match t.pc with
      | Some pc when not (Pc_causal.link_open pc ~peer_rank:from_rank) ->
        Pc_causal.open_link pc ~peer_rank:from_rank;
        (* open_link is a no-op for a non-neighbor; re-check before
           retransmitting anything *)
        if Pc_causal.link_open pc ~peer_rank:from_rank then begin
          (* Start the fresh link FIFO-causal: resend exactly the messages
             the peer's delivered-counts say it lacks, in stamping order
             (causally consistent under both msg-id schemes). The unstable
             buffer is a complete source — anything the peer is missing
             cannot have stabilised, since stability requires delivery by
             every member including the peer. *)
          let missing, copy_counter, hop_kind =
            match t.hybrid with
            | Some h ->
              (* hybrid: the per-link park buffer holds exactly what this
                 link withheld, filtered by the pong's delivered vector —
                 no unstable-buffer rescan *)
              ( Hybrid_causal.drain h ~peer:from_rank ~delivered,
                t.cells.drain_copies, Repro_obs.Event.Drain_copy )
            | None ->
              ( Pc_causal.missing_for ~delivered
                  (Stability.unstable t.stability),
                t.cells.resend_copies, Repro_obs.Event.Resend_copy )
          in
          let stats = Pc_causal.stats pc in
          stats.Pc_causal.barrier_retransmits <-
            stats.Pc_causal.barrier_retransmits + List.length missing;
          let dst = Group.member t.view from_rank in
          List.iter
            (fun d ->
              Repro_obs.Registry.incr copy_counter;
              note_hop_send t ~uid:d.Wire.msg_id ~dst hop_kind;
              Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst
                (Wire.Data d))
            missing
        end
      | Some _ | None -> ())
  | Wire.Seq_order { view_id; msg_id; global_seq } ->
    if view_id > t.view.Group.view_id then
      t.future_proto <- (view_id, proto) :: t.future_proto
    else if view_id = t.view.Group.view_id then begin
      Total_order.Sequencer_queue.add_order t.seq_queue ~msg_id ~global_seq;
      release_total_queues t
    end
  | Wire.Gossip { view_id; rank; vc; lamport } ->
    on_gossip t ~view_id ~rank ~vc ~lamport
  | Wire.Flush { new_view_id; survivors; unstable; orders } ->
    on_flush t ~src ~new_view_id ~survivors ~unstable ~orders
  | Wire.Flush_done { new_view_id; from } -> on_flush_done t ~new_view_id ~from
  | Wire.New_view { view_id; members } -> on_new_view t ~view_id ~members
  | Wire.Join_request { joiner } -> on_join_request t ~joiner
  | Wire.State_transfer { view_id; state } -> on_state_transfer t ~view_id ~state
  end

let create ?endpoint:shared_endpoint ?payload_codec ~engine ~shared ~config
    ~view ~self ~callbacks () =
  let rank = Group.rank_of_exn view self in
  let parallel_ids =
    match Engine.impl engine with
    | Engine.Sequential -> false
    | Engine.Parallel _ ->
      (* cross-member mutable state the lanes would race on: the shared
         causal graph (and its id index) and the group telemetry log *)
      if config.Config.track_graph then
        invalid_arg "Stack.create: track_graph needs the sequential engine";
      (match shared.obs with
       | Some log when not (Repro_obs.Log.synchronized log) ->
         (* a mutex-guarded log is lane-safe: record order is scheduler-
            dependent but the record set is not, so sorted consumers
            (trace trees, watchdogs, fingerprints) stay deterministic *)
         invalid_arg
           "Stack.create: group telemetry under the parallel engine needs \
            Log.create ~synchronized:true"
       | Some _ | None -> ());
      if self >= msg_id_pid_limit then
        invalid_arg "Stack.create: pid too large for parallel msg_ids";
      true
  in
  let metrics = Metrics.create () in
  let cells = make_reg_cells config in
  let obs = obs_pair shared ~self in
  let codec =
    match (config.Config.wire_format, payload_codec) with
    | Config.Structural, _ -> None
    | Config.Encoded, Some pc -> Some (Wire_codec.create pc)
    | Config.Encoded, None ->
      invalid_arg "Stack.create: Encoded wire format needs ~payload_codec"
  in
  let bytes_of = Option.map (fun c -> Wire_codec.data_bytes c) codec in
  let t =
    { engine; shared; config; self; callbacks; metrics; cells; bytes_of;
      parallel_ids; own_msg_seq = 0;
      lamport = Lamport.create (); delivered_ids = Hashtbl.create 256;
      causal_seen = Hashtbl.create 256;
      endpoint = None; view; rank;
      vc = Vector_clock.create (Group.size view);
      pc = None;
      hybrid = None;
      queue = make_queue ?obs config;
      seq_queue = Total_order.Sequencer_queue.create ?obs ();
      lamport_queue =
        Total_order.Lamport_queue.create ?obs ~group_size:(Group.size view) ();
      stability =
        make_stability ?obs ?bytes_of ~registry:cells.registry config
          ~group_size:(Group.size view) ~metrics ~graph:shared.graph;
      next_global_seq = 0; status = Normal; outbox = []; installing = false;
      failed_members = Pid_set.empty; deferred_lamport_gossip = [];
      future_proto = [];
      replay_proto = (fun _ -> ()); pending_joins = [];
      trigger_pending_joins = (fun () -> ());
      get_state = (fun () -> ""); set_state = (fun _ -> ());
      cancel_gossip = (fun () -> ()); ejected = false;
      eject = (fun () -> ()); last_seen = Hashtbl.create 16 }
  in
  let endpoint =
    match shared_endpoint with
    | Some e -> e
    | None ->
      let framing =
        Option.map
          (fun c ->
            { Transport.frame = Wire_codec.encode c;
              unframe = Wire_codec.decode c })
          codec
      in
      Endpoint.create ?obs:shared.obs ~registry:cells.registry ?framing
        ~batch_window:config.Config.batch_window ~engine ~self
        ~mode:config.Config.transport
        ~on_direct:(fun ~src payload -> t.callbacks.direct ~src payload)
        ()
  in
  Endpoint.register_group endpoint ~group:shared.group_id (fun ~src proto ->
      handle_proto t ~src proto);
  t.endpoint <- Some endpoint;
  (* every initial member is "carried over": links start open, no barrier *)
  reset_pc t ~prev_members:(Pid_set.of_list (Array.to_list view.Group.members));
  t.cancel_gossip <-
    Engine.every engine ~owner:self ~period:config.Config.gossip_period
      (fun () -> send_gossip t);
  t.replay_proto <- (fun proto -> handle_proto t ~src:(-1) proto);
  t.eject <-
    (fun () ->
      if not t.ejected then begin
        t.ejected <- true;
        t.cancel_gossip ();
        (* the application learns it was expelled through its own failure
           notification; it may re-join with a fresh stack *)
        t.callbacks.member_failed t.self
      end);
  t.trigger_pending_joins <-
    (fun () ->
      match t.status with
      | Normal
        when t.pending_joins <> [] && t.self = Group.coordinator t.view ->
        start_view_change t ~failed:None ~joined:[]
      | Normal | Flushing _ | Joining _ -> ());
  (match config.Config.failure_detection with
   | Config.Oracle ->
     Engine.on_failure engine (fun pid ->
         if Engine.is_alive engine self && Group.mem t.view pid && pid <> self
         then start_view_change t ~failed:(Some pid) ~joined:[])
   | Config.Heartbeat { period; timeout } ->
     (* the stability gossip doubles as the heartbeat; a peer silent past
        the timeout is suspected. Detection is per-observer: peers learn of
        the round from the Flush message and adopt its survivor set. *)
     let created_at = Engine.now engine in
     let check () =
       if (not t.ejected) && Engine.is_alive engine self then begin
         let now = Engine.now engine in
         Array.iter
           (fun peer ->
             if peer <> self && not (Pid_set.mem peer t.failed_members) then begin
               let last =
                 Option.value ~default:created_at
                   (Hashtbl.find_opt t.last_seen peer)
               in
               if Sim_time.sub now last > timeout then
                 start_view_change t ~failed:(Some peer) ~joined:[]
             end)
           t.view.Group.members
       end
     in
     let (_cancel : unit -> unit) =
       Engine.every engine ~owner:self ~period check
     in
     ());
  t

let set_state_handlers t ~get ~set =
  t.get_state <- get;
  t.set_state <- set

let join ?endpoint:shared_endpoint ?payload_codec ~engine ~shared ~config
    ~self ~contact ~callbacks () =
  let placeholder = Group.make_view ~view_id:(-1) [ self ] in
  let t =
    create ?endpoint:shared_endpoint ?payload_codec ~engine ~shared ~config
      ~view:placeholder ~self ~callbacks ()
  in
  let join_state = { pending_view = None; pending_state = None } in
  t.status <- Joining join_state;
  let request () =
    Endpoint.send_proto (endpoint t) ~group:t.shared.group_id ~dst:contact (Wire.Join_request { joiner = self })
  in
  request ();
  (* retry until admitted: the contact (or the join round) may fail *)
  let rec retry () =
    match t.status with
    | Joining _ ->
      request ();
      Engine.after engine ~owner:self (Sim_time.ms 500) retry
    | Normal | Flushing _ -> ()
  in
  Engine.after engine ~owner:self (Sim_time.ms 500) retry;
  t

let shutdown t =
  t.cancel_gossip ();
  t.callbacks <- null_callbacks

let create_group ?obs ?payload_codec ~engine ~config ~names ~make_callbacks () =
  let pids =
    List.map (fun n -> Engine.spawn engine ~name:n (fun _ _ -> ())) names
  in
  let view = Group.make_view ~view_id:0 pids in
  let shared = make_shared ?obs config in
  List.map
    (fun pid ->
      create ?payload_codec ~engine ~shared ~config ~view ~self:pid
        ~callbacks:(make_callbacks pid) ())
    pids
