type 'a t = {
  self : Engine.pid;
  engine : 'a Wire.t Transport.packet Engine.t;
  mutable transport : 'a Wire.t Transport.t option;
  groups : (int, src:Engine.pid -> 'a Wire.proto -> unit) Hashtbl.t;
  mutable on_direct : src:Engine.pid -> 'a -> unit;
}

let create ?obs ?registry ?framing ?batch_window ~engine ~self ~mode
    ?(on_direct = fun ~src:_ _ -> ()) () =
  let endpoint =
    { self; engine; transport = None; groups = Hashtbl.create 4; on_direct }
  in
  let deliver ~src (wire : 'a Wire.t) =
    match wire with
    | Wire.Proto (group, proto) ->
      (match Hashtbl.find_opt endpoint.groups group with
       | Some handler -> handler ~src proto
       | None -> ())
    | Wire.Direct payload -> endpoint.on_direct ~src payload
  in
  let transport =
    Transport.create ?obs ?registry ?framing ?batch_window ~engine ~self ~mode
      ~on_deliver:deliver ()
  in
  endpoint.transport <- Some transport;
  Engine.set_handler engine self (fun _self env -> Transport.handle transport env);
  endpoint

let self t = t.self
let engine t = t.engine

let transport t =
  match t.transport with
  | Some tr -> tr
  | None -> invalid_arg "Endpoint: transport not initialised"

let register_group t ~group handler = Hashtbl.replace t.groups group handler

let send_proto t ~group ~dst proto =
  Transport.send (transport t) ~dst (Wire.Proto (group, proto))

let send_direct t ~dst payload = Transport.send (transport t) ~dst (Wire.Direct payload)

let set_on_direct t handler = t.on_direct <- handler

let packets_sent t = Transport.packets_sent (transport t)
