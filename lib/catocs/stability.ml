(* Releasing a stable message is identical bookkeeping in both
   implementations; only the strategy for *finding* newly stable messages
   differs. *)
let release_message ~bytes_of ~metrics ~graph ~obs ~lag_histo ~now
    (data : 'a Wire.data) =
  let bytes = bytes_of data in
  Metrics.note_unstable_removed metrics ~bytes;
  let lag_us =
    float_of_int (Sim_time.to_us (Sim_time.sub now data.Wire.sent_at))
  in
  Stats.Summary.add metrics.Metrics.stability_lag_us lag_us;
  Repro_obs.Histo.add lag_histo lag_us;
  (match obs with
   | Some (log, pid) ->
     Repro_obs.Log.span_stable log ~at:now ~uid:data.Wire.msg_id ~pid
   | None -> ());
  match graph with
  | Some graph -> Causality.remove_stable graph data.Wire.msg_id
  | None -> ()

(* Shared registry cells: send-to-stable lag distribution, and a count of
   cached matrix-minima advances (the incremental tracker's release driver;
   the reference implementation rescans instead of tracking advances, so it
   reports zero). *)
let register_cells registry =
  let registry =
    match registry with Some r -> r | None -> Repro_obs.Registry.null ()
  in
  ( Repro_obs.Registry.histogram registry ~layer:Repro_obs.Event.Stability
      ~name:"stability_lag_us" (),
    Repro_obs.Registry.counter registry ~layer:Repro_obs.Event.Stability
      ~name:"minima_advances" () )

(* ------------------------------------------------------------------------- *)
(* Reference implementation: one hashtable of buffered messages, rescanned in
   full against the matrix minima on every observation. O(buffer) per
   release pass — correct and obviously so, kept as the differential-testing
   baseline for the incremental implementation below. *)

module Reference = struct
  type 'a q = {
    matrix : Group_clock.t;
    buffer : (Wire.msg_id, 'a Wire.data) Hashtbl.t;
    bytes_of : 'a Wire.data -> int;
    metrics : Metrics.t;
    graph : Causality.t option;
    obs : (Repro_obs.Log.t * int) option;
    lag_histo : Repro_obs.Histo.t;
    mutable bytes : int;
  }

  type nonrec 'a t = 'a q

  let create ?clock ?(bytes_of = Wire.buffered_bytes) ?obs ?registry
      ~group_size ~metrics ~graph () =
    let lag_histo, _ = register_cells registry in
    { matrix = Group_clock.create ?impl:clock group_size;
      buffer = Hashtbl.create 64; bytes_of; metrics; graph; obs; lag_histo;
      bytes = 0 }

  let note_sent_or_delivered t (data : 'a Wire.data) =
    if not (Hashtbl.mem t.buffer data.Wire.msg_id) then begin
      Hashtbl.add t.buffer data.Wire.msg_id data;
      let bytes = t.bytes_of data in
      t.bytes <- t.bytes + bytes;
      Metrics.note_unstable_added t.metrics ~bytes
    end;
    Group_clock.update_row t.matrix data.Wire.sender_rank data.Wire.vt

  (* Fifo_gap-mode fast path: a PC/Hybrid stamp is nonzero only at the
     sender's own component, so the sender-row merge is one diagonal cell. *)
  let note_delivered_diag t (data : 'a Wire.data) =
    if not (Hashtbl.mem t.buffer data.Wire.msg_id) then begin
      Hashtbl.add t.buffer data.Wire.msg_id data;
      let bytes = t.bytes_of data in
      t.bytes <- t.bytes + bytes;
      Metrics.note_unstable_added t.metrics ~bytes
    end;
    let sender = data.Wire.sender_rank in
    Group_clock.update_cell t.matrix sender sender
      ~seq:(Vector_clock.get data.Wire.vt sender)

  let release_stable t ~now =
    let stable_ids =
      Hashtbl.fold
        (fun id (data : 'a Wire.data) acc ->
          let sender = data.Wire.sender_rank in
          let seq = Vector_clock.get data.Wire.vt sender in
          if Group_clock.stable t.matrix ~sender ~seq then (id, data) :: acc
          else acc)
        t.buffer []
    in
    let release (id, data) =
      Hashtbl.remove t.buffer id;
      t.bytes <- t.bytes - t.bytes_of data;
      release_message ~bytes_of:t.bytes_of ~metrics:t.metrics ~graph:t.graph
        ~obs:t.obs ~lag_histo:t.lag_histo ~now data
    in
    List.iter release stable_ids

  let observe_vc t ~rank ~now vc =
    Group_clock.update_row t.matrix rank vc;
    release_stable t ~now

  (* our own running clock is mutable — never adopted by reference *)
  let self_observe t ~rank ~now vc =
    Group_clock.update_row ~live:true t.matrix rank vc;
    release_stable t ~now

  (* The caller's clock advanced only at [col] since its last observation:
     merge that one cell, then the usual release pass. *)
  let self_observe_cell t ~rank ~col ~seq ~now =
    Group_clock.update_cell t.matrix rank col ~seq;
    release_stable t ~now

  let unstable t =
    Hashtbl.fold (fun _ data acc -> data :: acc) t.buffer []
    |> List.sort Wire.compare_stamping

  let unstable_count t = Hashtbl.length t.buffer
  let unstable_bytes t = t.bytes

  let matrix t = t.matrix
end

(* ------------------------------------------------------------------------- *)
(* Incremental implementation.

   Per-sender deques hold buffered messages in ascending sequence order (the
   causal/FIFO delivery condition guarantees per-sender in-order buffering
   within a view, so pushes are naturally sorted and a max-seq watermark
   doubles as the duplicate check). The matrix clock reports exactly which
   columns' minima advanced on each row merge; those columns are marked
   dirty, and an observation pops only the deque prefixes whose sequence
   numbers just crossed the advanced minimum — amortized O(newly stable)
   per release pass instead of O(buffer x group). A message is always
   buffered strictly before it can be stable (our own matrix row trails our
   deliveries), so every release is triggered by a later minimum advance
   and none is missed. *)

module Incremental = struct
  type 'a q = {
    matrix : Group_clock.t;
    pending : 'a Wire.data Queue.t array;  (* index = sender rank *)
    highest : int array;  (* highest seq buffered per sender (dedup) *)
    mutable dirty : int list;  (* columns whose cached minimum advanced *)
    dirty_mark : bool array;
    bytes_of : 'a Wire.data -> int;
    metrics : Metrics.t;
    graph : Causality.t option;
    obs : (Repro_obs.Log.t * int) option;
    lag_histo : Repro_obs.Histo.t;
    reg_minima : Repro_obs.Registry.counter;
    mutable count : int;
    mutable bytes : int;
  }

  type nonrec 'a t = 'a q

  let create ?clock ?(bytes_of = Wire.buffered_bytes) ?obs ?registry
      ~group_size ~metrics ~graph () =
    let lag_histo, reg_minima = register_cells registry in
    { matrix = Group_clock.create ?impl:clock group_size;
      pending = Array.init group_size (fun _ -> Queue.create ());
      highest = Array.make group_size 0;
      dirty = [];
      dirty_mark = Array.make group_size false;
      bytes_of; metrics; graph; obs; lag_histo; reg_minima; count = 0;
      bytes = 0 }

  let mark_dirty t s =
    Repro_obs.Registry.incr t.reg_minima;
    if not t.dirty_mark.(s) then begin
      t.dirty_mark.(s) <- true;
      t.dirty <- s :: t.dirty
    end

  let note_sent_or_delivered t (data : 'a Wire.data) =
    let sender = data.Wire.sender_rank in
    let seq = Vector_clock.get data.Wire.vt sender in
    if seq > t.highest.(sender) then begin
      t.highest.(sender) <- seq;
      Queue.push data t.pending.(sender);
      let bytes = t.bytes_of data in
      t.bytes <- t.bytes + bytes;
      t.count <- t.count + 1;
      Metrics.note_unstable_added t.metrics ~bytes
    end;
    Group_clock.update_row_tracked t.matrix sender data.Wire.vt
      ~advanced:(fun s -> mark_dirty t s)

  (* Fifo_gap-mode fast path: a PC/Hybrid stamp is nonzero only at the
     sender's own component, so the sender-row merge is one diagonal cell —
     O(1) instead of the O(group) full-row classification pass. *)
  let note_delivered_diag t (data : 'a Wire.data) =
    let sender = data.Wire.sender_rank in
    let seq = Vector_clock.get data.Wire.vt sender in
    if seq > t.highest.(sender) then begin
      t.highest.(sender) <- seq;
      Queue.push data t.pending.(sender);
      let bytes = t.bytes_of data in
      t.bytes <- t.bytes + bytes;
      t.count <- t.count + 1;
      Metrics.note_unstable_added t.metrics ~bytes
    end;
    Group_clock.update_cell_tracked t.matrix sender sender ~seq
      ~advanced:(fun s -> mark_dirty t s)

  (* Pop every deque prefix covered by its column's (already advanced)
     minimum. Dirty columns marked during [note_sent_or_delivered] are
     drained here too: releases happen only at observation points, exactly
     like the reference implementation. *)
  let release_dirty t ~now =
    match t.dirty with
    | [] -> ()
    | dirty ->
      t.dirty <- [];
      List.iter
        (fun s ->
          t.dirty_mark.(s) <- false;
          let q = t.pending.(s) in
          let min_seq = Group_clock.min_component t.matrix s in
          let go = ref true in
          while !go do
            match Queue.peek_opt q with
            | Some (data : 'a Wire.data)
              when Vector_clock.get data.Wire.vt s <= min_seq ->
              ignore (Queue.pop q);
              t.bytes <- t.bytes - t.bytes_of data;
              t.count <- t.count - 1;
              release_message ~bytes_of:t.bytes_of ~metrics:t.metrics
                ~graph:t.graph ~obs:t.obs ~lag_histo:t.lag_histo ~now data
            | Some _ | None -> go := false
          done)
        dirty

  let observe_vc t ~rank ~now vc =
    Group_clock.update_row_tracked t.matrix rank vc
      ~advanced:(fun s -> mark_dirty t s);
    release_dirty t ~now

  (* our own running clock is mutable — never adopted by reference *)
  let self_observe t ~rank ~now vc =
    Group_clock.update_row_tracked ~live:true t.matrix rank vc
      ~advanced:(fun s -> mark_dirty t s);
    release_dirty t ~now

  (* The caller's clock advanced only at [col] since its last observation:
     merge that one cell, then the usual release pass. *)
  let self_observe_cell t ~rank ~col ~seq ~now =
    Group_clock.update_cell_tracked t.matrix rank col ~seq
      ~advanced:(fun s -> mark_dirty t s);
    release_dirty t ~now

  (* k-way merge of the per-sender deques: each is ascending in stamping
     order (per-sender send order), so no sort is needed. *)
  let unstable t =
    let lists = Array.map (fun q -> List.of_seq (Queue.to_seq q)) t.pending in
    let heap =
      Heap.create ~cmp:(fun (a, _) (b, _) -> Wire.compare_stamping a b)
    in
    Array.iteri
      (fun r l ->
        match l with
        | [] -> ()
        | (d : 'a Wire.data) :: _ -> Heap.push heap (d, r))
      lists;
    let out = ref [] in
    let go = ref true in
    while !go do
      match Heap.pop heap with
      | None -> go := false
      | Some (_, r) -> (
        match lists.(r) with
        | d :: rest ->
          out := d :: !out;
          lists.(r) <- rest;
          (match rest with
           | (d' : 'a Wire.data) :: _ -> Heap.push heap (d', r)
           | [] -> ())
        | [] -> ())
    done;
    List.rev !out

  let unstable_count t = t.count
  let unstable_bytes t = t.bytes

  let matrix t = t.matrix
end

(* ------------------------------------------------------------------------- *)
(* Dispatch: one branch per call, mirroring [Delivery_queue], so whole-stack
   runs can select either implementation from configuration alone. *)

type impl = Incremental | Reference

type 'a t =
  | Incremental_s of 'a Incremental.t
  | Reference_s of 'a Reference.t

let create ?(impl = Incremental) ?clock ?bytes_of ?obs ?registry ~group_size
    ~metrics ~graph () =
  match impl with
  | Incremental ->
    Incremental_s
      (Incremental.create ?clock ?bytes_of ?obs ?registry ~group_size ~metrics
         ~graph ())
  | Reference ->
    Reference_s
      (Reference.create ?clock ?bytes_of ?obs ?registry ~group_size ~metrics
         ~graph ())

let impl_of = function Incremental_s _ -> Incremental | Reference_s _ -> Reference

let note_sent_or_delivered t data =
  match t with
  | Incremental_s q -> Incremental.note_sent_or_delivered q data
  | Reference_s q -> Reference.note_sent_or_delivered q data

let note_delivered_diag t data =
  match t with
  | Incremental_s q -> Incremental.note_delivered_diag q data
  | Reference_s q -> Reference.note_delivered_diag q data

let observe_vc t ~rank ~now vc =
  match t with
  | Incremental_s q -> Incremental.observe_vc q ~rank ~now vc
  | Reference_s q -> Reference.observe_vc q ~rank ~now vc

let self_observe t ~rank ~now vc =
  match t with
  | Incremental_s q -> Incremental.self_observe q ~rank ~now vc
  | Reference_s q -> Reference.self_observe q ~rank ~now vc

let self_observe_cell t ~rank ~col ~seq ~now =
  match t with
  | Incremental_s q -> Incremental.self_observe_cell q ~rank ~col ~seq ~now
  | Reference_s q -> Reference.self_observe_cell q ~rank ~col ~seq ~now

let unstable = function
  | Incremental_s q -> Incremental.unstable q
  | Reference_s q -> Reference.unstable q

let unstable_count = function
  | Incremental_s q -> Incremental.unstable_count q
  | Reference_s q -> Reference.unstable_count q

let unstable_bytes = function
  | Incremental_s q -> Incremental.unstable_bytes q
  | Reference_s q -> Reference.unstable_bytes q

let matrix = function
  | Incremental_s q -> Incremental.matrix q
  | Reference_s q -> Reference.matrix q
