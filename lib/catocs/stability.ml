type 'a t = {
  matrix : Matrix_clock.t;
  buffer : (Wire.msg_id, 'a Wire.data) Hashtbl.t;
  metrics : Metrics.t;
  graph : Causality.t option;
  mutable bytes : int;
}

let create ~group_size ~metrics ~graph =
  { matrix = Matrix_clock.create group_size; buffer = Hashtbl.create 64;
    metrics; graph; bytes = 0 }

let note_sent_or_delivered t (data : 'a Wire.data) =
  if not (Hashtbl.mem t.buffer data.Wire.msg_id) then begin
    Hashtbl.add t.buffer data.Wire.msg_id data;
    let bytes = Wire.buffered_bytes data in
    t.bytes <- t.bytes + bytes;
    Metrics.note_unstable_added t.metrics ~bytes
  end;
  Matrix_clock.update_row t.matrix data.Wire.sender_rank data.Wire.vt

let release_stable t ~now =
  let stable_ids =
    Hashtbl.fold
      (fun id (data : 'a Wire.data) acc ->
        let sender = data.Wire.sender_rank in
        let seq = Vector_clock.get data.Wire.vt sender in
        if Matrix_clock.stable t.matrix ~sender ~seq then (id, data) :: acc
        else acc)
      t.buffer []
  in
  let release (id, data) =
    Hashtbl.remove t.buffer id;
    let bytes = Wire.buffered_bytes data in
    t.bytes <- t.bytes - bytes;
    Metrics.note_unstable_removed t.metrics ~bytes;
    Stats.Summary.add t.metrics.Metrics.stability_lag_us
      (float_of_int (Sim_time.to_us (Sim_time.sub now data.Wire.sent_at)));
    match t.graph with
    | Some graph -> Causality.remove_stable graph id
    | None -> ()
  in
  List.iter release stable_ids

let observe_vc t ~rank ~now vc =
  Matrix_clock.update_row t.matrix rank vc;
  release_stable t ~now

let self_observe t ~rank ~now vc = observe_vc t ~rank ~now vc

let unstable t =
  Hashtbl.fold (fun _ data acc -> data :: acc) t.buffer []
  |> List.sort (fun (a : 'a Wire.data) b ->
         Int.compare a.Wire.msg_id b.Wire.msg_id)

let unstable_count t = Hashtbl.length t.buffer
let unstable_bytes t = t.bytes

let matrix t = t.matrix
