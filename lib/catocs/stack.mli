(** One group member's CATOCS protocol instance.

    A stack implements, per the configured {!Config.ordering}:

    - FBCAST: per-sender FIFO multicast (the non-CATOCS baseline),
    - CBCAST: vector-clock causal multicast with the
      Birman-Schiper-Stephenson delivery condition,
    - ABCAST: CBCAST plus a sequencer (the lowest-ranked member) assigning a
      single total order,
    - Lamport total order: delivery in timestamp order once stable.

    All modes provide atomic ("all surviving members or none") delivery via
    unstable-message buffering and a flush-based view-change protocol in the
    virtual synchrony style: on failure notification members suppress
    sending, exchange unstable messages, and install the next view only when
    every survivor holds every message any survivor delivered. Delivery is
    atomic but {e not durable} — exactly the Section 2 gap, which
    {!inject_partial_multicast} exists to demonstrate.

    View-change protocol note: flush rounds assume the flush control
    messages themselves are not lost; configure [Reliable] transport when
    running with message loss. *)

type 'a callbacks = {
  deliver : sender:Engine.pid -> 'a -> unit;
  view_change : Group.view -> unit;
      (** invoked after the new view is installed *)
  member_failed : Engine.pid -> unit;
      (** ordered failure notification: after all of the failed member's
          surviving messages have been delivered *)
  direct : src:Engine.pid -> 'a -> unit;
      (** out-of-band point-to-point messages *)
}

val null_callbacks : 'a callbacks

type shared
(** Group-wide context: message-id allocation, the shared active causal
    graph, and the id index used to materialise graph arcs. *)

val make_shared : ?group_id:int -> ?obs:Repro_obs.Log.t -> Config.t -> shared
(** Group ids default to a fresh id from a global counter; pass one only to
    pin a stable identifier. [obs] attaches a telemetry log shared by every
    stack of the group: each member then emits lifecycle span events
    (send/recv/queued/delivered/stable), view-flush markers and retransmit
    instants into it (see {!Repro_obs.Event}). *)

val shared_graph : shared -> Causality.t option
val shared_obs : shared -> Repro_obs.Log.t option
val group_id : shared -> int

type 'a t

val create :
  ?endpoint:'a Endpoint.t ->
  ?payload_codec:'a Wire_codec.payload_codec ->
  engine:'a Wire.t Transport.packet Engine.t ->
  shared:shared ->
  config:Config.t ->
  view:Group.view ->
  self:Engine.pid ->
  callbacks:'a callbacks ->
  unit ->
  'a t
(** [endpoint] lets several stacks (one per group) share one process's
    endpoint — a process may belong to many groups; by default a fresh
    endpoint is created and the stack is its only group.

    [payload_codec] is required when [config.wire_format = Encoded] (and
    the stack creates its own endpoint): the fresh endpoint then frames
    every message through {!Wire_codec} — with
    [config.batch_window > Sim_time.zero], coalescing same-link sends —
    and unstable-bytes gauges charge real encoded sizes. Raises
    [Invalid_argument] if [Encoded] is configured without a codec. A
    caller-supplied shared [endpoint] keeps whatever framing it was
    created with. *)

val create_group :
  ?obs:Repro_obs.Log.t ->
  ?payload_codec:'a Wire_codec.payload_codec ->
  engine:'a Wire.t Transport.packet Engine.t ->
  config:Config.t ->
  names:string list ->
  make_callbacks:(Engine.pid -> 'a callbacks) ->
  unit ->
  'a t list
(** Spawn one process per name, form the initial view over all of them, and
    return their stacks (in name order). [obs] is threaded to
    {!make_shared}. *)

val multicast : 'a t -> 'a -> unit
(** Multicast to the current view. During a flush, sends are queued and
    transmitted once the new view is installed (send suppression). *)

val send_direct : 'a t -> dst:Engine.pid -> 'a -> unit

val set_callbacks : 'a t -> 'a callbacks -> unit

val self : 'a t -> Engine.pid
val shared_of : 'a t -> shared
val config_of : 'a t -> Config.t
val view : 'a t -> Group.view
val rank : 'a t -> int
val metrics : 'a t -> Metrics.t

val registry : 'a t -> Repro_obs.Registry.t
(** The stack's protocol-metrics registry; disabled (all-scrap) unless the
    stack was created with [Config.metrics = true]. Per-stack instances
    from one group [Registry.merge] into domain-count-independent totals. *)

val chaos_drop_forward_copy_metric : bool ref
(** Test-only fault injection: when set, PC forward copies are still sent
    (and still logged as hops) but the [ordering/forward_copies] counter is
    not bumped, so the copy-conservation watchdog must report the
    discrepancy. Reset to [false] after use. *)

val vector_clock : 'a t -> Vector_clock.t
val unstable_count : 'a t -> int
val unstable_bytes : 'a t -> int
val pending_count : 'a t -> int
(** Messages currently blocked in ordering queues. *)

val pc_stats : 'a t -> Pc_causal.stats option
(** PC-broadcast operational counters (forwards, duplicates, barrier
    traffic); [None] unless [Config.pc_active]. The PC state is rebuilt on
    every view install, so counters are per-view, not per-lifetime. *)

val pc_neighbors : 'a t -> int array option
(** Current overlay neighbor ranks; [None] unless [Config.pc_active]. *)

val hybrid_stats : 'a t -> Hybrid_causal.stats option
(** Hybrid-buffering counters (suppressed forwards, parked/drained copies);
    [None] unless [Config.hybrid_active]. Per-view, like {!pc_stats}. *)

val record_gauges : 'a t -> unit
(** Sample this member's occupancy gauges (unstable msgs/bytes, delivery
    queue depth, blocked count) into the group's telemetry log, stamped at
    the engine's current time. O(1); a no-op when the group has no log or
    logging is disabled. Meant to be driven periodically via
    [Engine.every]. *)

val is_flushing : 'a t -> bool

val is_ejected : 'a t -> bool
(** True once the group removed this member (its crash was detected — or,
    under heartbeat detection with loss, it was falsely suspected). An
    ejected stack is inert; the process re-joins with a fresh stack. The
    application is told through [member_failed] with its own pid. *)

val inject_partial_multicast : 'a t -> 'a -> recipients:Engine.pid list -> unit
(** Fault injection: perform a multicast whose network sends reach only
    [recipients] (the local copy is still processed), modelling a sender
    crash mid-multicast. Used by the durability-gap experiment. *)

val set_state_handlers :
  'a t -> get:(unit -> string) -> set:(string -> unit) -> unit
(** Application-state transfer hooks for joins: [get] is called on the view
    coordinator when a member is admitted (after all old-view deliveries,
    so every member would produce the same snapshot); [set] is called on
    the joiner before its first delivery in the new view. The encoding of
    the string is the application's business. Defaults: empty snapshot,
    ignored on receipt. *)

val join :
  ?endpoint:'a Endpoint.t ->
  ?payload_codec:'a Wire_codec.payload_codec ->
  engine:'a Wire.t Transport.packet Engine.t ->
  shared:shared ->
  config:Config.t ->
  self:Engine.pid ->
  contact:Engine.pid ->
  callbacks:'a callbacks ->
  unit ->
  'a t
(** Ask to join an existing group through [contact] (any member). The
    request is forwarded to the view coordinator, which runs a flush and
    installs a view containing the joiner; the joiner receives the new view
    and a state transfer, then starts delivering. The request retries every
    500ms until admitted, so a crashed contact or an interrupted round is
    survived. Multicasts issued while joining are queued and sent in the
    first installed view. A process that crashed and recovered rejoins with
    a {e fresh} stack via this function (its old stack is stale; see
    {!shutdown}). *)

val shutdown : 'a t -> unit
(** Detach a stale stack: stops its gossip and makes it inert. Used when a
    recovered process abandons its pre-crash stack to re-join with a new
    one. *)
