(** The original O(pending) list-scan delivery queue, preserved verbatim as
    the differential-testing baseline for the indexed rewrite. Alias of
    {!Delivery_queue.Reference}; see that module (and the [?impl] argument
    of {!Delivery_queue.create}) for how it is selected at runtime. *)

include module type of struct
  include Delivery_queue.Reference
end
