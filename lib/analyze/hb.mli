(** The happened-before DAG of an execution.

    Nodes are the application-level events of an {!Exec.t} (sends,
    deliveries, external events); edges carry provenance:

    - [Fifo]: program order between two sends of the same process (the
      ordering a FIFO transport already enforces);
    - [Local]: program order involving a delivery or external event;
    - [Delivery]: a multicast send to one of its deliveries;
    - [External]: a declared channel edge — ordering that travelled outside
      the communication substrate.

    The graph is transitively reduced at construction, so an edge is present
    exactly when no other path carries the same constraint; provenance then
    tells you {e which mechanism} each irreducible constraint relies on.
    Reachability is answered both over all edges and over transport-visible
    edges only ([External] excluded) — the gap between the two is what the
    hidden-channel detector reports. *)

type provenance = Fifo | Local | Delivery | External of string

type edge = { src : Exec.node; dst : Exec.node; why : provenance }

type t

val build : Exec.t -> t
(** Always succeeds, including on cyclic inputs (a cyclic "DAG" witnesses a
    causal cycle — see {!find_cycle}); reachability queries on a cyclic
    graph treat cycle members as mutually reachable. *)

val exec : t -> Exec.t
val node_count : t -> int
val edges : t -> edge list
(** The transitively reduced edge set, deterministically ordered. *)

val find_cycle : t -> Exec.node list option
(** [Some nodes] if the relation is cyclic: a witness cycle in order
    (the last node has an edge back to the first). *)

val reaches : t -> ?transport_only:bool -> Exec.node -> Exec.node -> bool
(** [reaches t a b] is true iff [a] happened-before [b] (strictly: a node
    does not reach itself). With [~transport_only:true] (default [false]),
    [External] edges are ignored — the relation the protocol stack can
    actually see. *)

val shortest_path :
  t -> ?transport_only:bool -> Exec.node -> Exec.node -> edge list option
(** A minimum-hop witness path from the first node to the second, or [None]
    if unreachable. *)

val describe_node : Exec.t -> Exec.node -> string
val describe_edge : Exec.t -> edge -> string
(** Human-readable forms used in finding evidence, e.g.
    ["send m3 by P -> deliver m3 at Q [delivery]"]. *)
