(** Source-level determinism lint — reference implementation.

    The whole repository's claim to reproducibility rests on every run being
    a pure function of (seed, config): time must come from [Sim_time] via
    the engine and randomness from [Sim.Rng]. This module is the original
    substring scanner for ambient-nondeterminism escape hatches, kept as
    the reference behind [Repro_lint.Driver]'s implementation dispatch; the
    AST-grounded analyzer in [lib/lint] is the production one.

    Comments and string literals are stripped before matching, so
    documentation (and this lint's own rule table) cannot self-flag, and
    patterns only match at identifier token boundaries. *)

module Reference : sig
  type rule = {
    pattern : string;  (** verbatim substring of stripped source *)
    reason : string;
  }

  val default_rules : rule list
  (** [Unix.gettimeofday], [Unix.time], [Unix.sleep], [Sys.time],
      [Random.] (the stdlib global PRNG, including [self_init]). *)

  val strip : string -> string
  (** Replace comment and string-literal bytes with spaces (newlines kept, so
      line numbers survive). Exposed for tests. *)

  type hit = {
    path : string;
    line : int;  (** 1-based *)
    rule : rule;
    text : string;  (** the raw (unstripped) source line, trimmed *)
  }

  val scan_string_hits : ?rules:rule list -> source:string -> string -> hit list
  (** Structured matches, one per (line, rule); the raw material both for
      {!scan_string} and for [Repro_lint.Driver]'s reference mode. *)

  val finding_of_hit : hit -> Finding.t

  val scan_string : ?rules:rule list -> source:string -> string -> Finding.t list
  (** [scan_string ~source contents] lints one compilation unit; [source] is
      the name used in findings (normally the file path). *)

  val scan_file : ?rules:rule list -> string -> Finding.t list
  val scan_file_hits : ?rules:rule list -> string -> hit list

  val scan_dir :
    ?rules:rule list -> ?exclude_dirs:string list -> string -> Finding.t list
  (** Recursively lint every [.ml]/[.mli] under the directory, skipping any
      subdirectory whose basename is in [exclude_dirs] (default [["sim"]]:
      the simulator owns the clock and the PRNG, so it is exempt). Results
      are sorted by path for determinism. *)

  val scan_dir_hits :
    ?rules:rule list -> ?exclude_dirs:string list -> string -> hit list
end
