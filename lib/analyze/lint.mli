(** Source-level determinism lint.

    The whole repository's claim to reproducibility rests on every run being
    a pure function of (seed, config): time must come from [Sim_time] via
    the engine and randomness from [Sim.Rng]. This lint scans OCaml sources
    for ambient-nondeterminism escape hatches — wall-clock reads, process
    timers, the stdlib's global PRNG — that would silently break replay.

    Comments and string literals are stripped before matching, so
    documentation (and this lint's own rule table) cannot self-flag. *)

type rule = {
  pattern : string;  (** verbatim substring of stripped source *)
  reason : string;
}

val default_rules : rule list
(** [Unix.gettimeofday], [Unix.time], [Unix.sleep], [Sys.time],
    [Random.] (the stdlib global PRNG, including [self_init]). *)

val strip : string -> string
(** Replace comment and string-literal bytes with spaces (newlines kept, so
    line numbers survive). Exposed for tests. *)

val scan_string : ?rules:rule list -> source:string -> string -> Finding.t list
(** [scan_string ~source contents] lints one compilation unit; [source] is
    the name used in findings (normally the file path). *)

val scan_file : ?rules:rule list -> string -> Finding.t list

val scan_dir :
  ?rules:rule list -> ?exclude_dirs:string list -> string -> Finding.t list
(** Recursively lint every [.ml]/[.mli] under the directory, skipping any
    subdirectory whose basename is in [exclude_dirs] (default [["sim"]]:
    the simulator owns the clock and the PRNG, so it is exempt). Results
    are sorted by path for determinism. *)
