type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emission -------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.is_integer (f /. 0.0) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string json =
  let buf = Buffer.create 1024 in
  let indent level = Buffer.add_string buf (String.make (2 * level) ' ') in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (level + 1);
          emit (level + 1) item)
        items;
      Buffer.add_char buf '\n';
      indent level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (level + 1);
          escape_string buf key;
          Buffer.add_string buf ": ";
          emit (level + 1) value)
        fields;
      Buffer.add_char buf '\n';
      indent level;
      Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub input !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = input.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape digit"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf code =
    (* enough for the BMP escapes this repository ever emits *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'u' ->
           advance ();
           add_utf8 buf (parse_hex4 ())
         | Some c -> fail (Printf.sprintf "invalid escape \\%C" c)
         | None -> fail "unterminated escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume_while p =
      while (match peek () with Some c -> p c | None -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume_while (fun c -> c >= '0' && c <= '9');
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      consume_while (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with
        | Some ('+' | '-') -> advance ()
        | Some _ | None -> ());
       consume_while (fun c -> c >= '0' && c <= '9')
     | Some _ | None -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | Some c -> fail (Printf.sprintf "expected ',' or '}', found %C" c)
          | None -> fail "unterminated object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | Some c -> fail (Printf.sprintf "expected ',' or ']', found %C" c)
          | None -> fail "unterminated array"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
