type rule = {
  pattern : string;
  reason : string;
}

let default_rules =
  [
    {
      pattern = "Unix.gettimeofday";
      reason = "wall-clock read; use the engine's simulated clock";
    };
    { pattern = "Unix.time"; reason = "wall-clock read; use Sim_time" };
    { pattern = "Unix.sleep"; reason = "real-time delay; schedule via Engine.after" };
    { pattern = "Sys.time"; reason = "process-timer read; use Sim_time" };
    {
      pattern = "Random.";
      reason = "ambient stdlib PRNG (global state, self_init); use Sim.Rng";
    };
  ]

(* Blank out comments ((* ... *), nested) and string literals, preserving
   newlines and byte offsets, so rule patterns only ever match code. Char
   literals are skipped too, lest '"' open a phantom string. *)
let strip source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if !depth > 0 then begin
      if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match source.[!i] with
         | '\\' when !i + 1 < n ->
           blank !i;
           blank (!i + 1);
           incr i
         | '"' ->
           blank !i;
           closed := true
         | _ -> blank !i);
        incr i
      done
    end
    else if c = '\'' && !i + 2 < n && source.[!i + 1] = '\\' then begin
      (* escaped char literal: '\n', '\\', '\034', '\x22' *)
      let j = ref (!i + 2) in
      while !j < n && source.[!j] <> '\'' do
        incr j
      done;
      for k = !i to min !j (n - 1) do
        blank k
      done;
      i := !j + 1
    end
    else if c = '\'' && !i + 2 < n && source.[!i + 2] = '\'' then begin
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else incr i
  done;
  Bytes.to_string out

let contains_at haystack pos needle =
  let m = String.length needle in
  pos + m <= String.length haystack && String.sub haystack pos m = needle

let scan_string ?(rules = default_rules) ~source contents =
  let stripped = strip contents in
  let lines = String.split_on_char '\n' stripped in
  let raw_lines = Array.of_list (String.split_on_char '\n' contents) in
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      List.iter
        (fun rule ->
          let hit = ref false in
          String.iteri
            (fun pos _ -> if contains_at line pos rule.pattern then hit := true)
            line;
          if !hit then
            findings :=
              {
                Finding.kind = Finding.Determinism_hazard;
                severity = Finding.Error;
                source;
                summary =
                  Printf.sprintf "%s:%d uses %s (%s)" source (idx + 1)
                    rule.pattern rule.reason;
                uids = [];
                pids = [];
                evidence =
                  (if idx < Array.length raw_lines then
                     [ String.trim raw_lines.(idx) ]
                   else []);
              }
              :: !findings)
        rules)
    lines;
  List.rev !findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ?rules path = scan_string ?rules ~source:path (read_file path)

let scan_dir ?rules ?(exclude_dirs = [ "sim" ]) root =
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
      Array.sort String.compare names;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then begin
            if not (List.mem name exclude_dirs) then walk path
          end
          else if
            Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
          then files := path :: !files)
        names
  in
  walk root;
  List.concat_map (fun path -> scan_file ?rules path) (List.sort String.compare !files)
