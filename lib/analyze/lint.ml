(* The original substring determinism lint, demoted to the reference
   implementation behind Repro_lint.Driver's [impl] dispatch (the AST
   analyzer in lib/lint is the real one). Kept verbatim apart from the
   token-boundary fix: a pattern now only matches at identifier
   boundaries, so [Sys.time] no longer fires inside [Sys.times] and
   [Random.] no longer fires inside [My_Random.]. *)

module Reference = struct
  type rule = {
    pattern : string;
    reason : string;
  }

  let default_rules =
    [
      {
        pattern = "Unix.gettimeofday";
        reason = "wall-clock read; use the engine's simulated clock";
      };
      { pattern = "Unix.time"; reason = "wall-clock read; use Sim_time" };
      { pattern = "Unix.sleep"; reason = "real-time delay; schedule via Engine.after" };
      { pattern = "Sys.time"; reason = "process-timer read; use Sim_time" };
      {
        pattern = "Random.";
        reason = "ambient stdlib PRNG (global state, self_init); use Sim.Rng";
      };
    ]

  (* Blank out comments ((* ... *), nested) and string literals, preserving
     newlines and byte offsets, so rule patterns only ever match code. Char
     literals are skipped too, lest '"' open a phantom string. *)
  let strip source =
    let n = String.length source in
    let out = Bytes.of_string source in
    let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
    let i = ref 0 in
    let depth = ref 0 in
    while !i < n do
      let c = source.[!i] in
      if !depth > 0 then begin
        if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
          blank !i;
          blank (!i + 1);
          incr depth;
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
          blank !i;
          blank (!i + 1);
          decr depth;
          i := !i + 2
        end
        else begin
          blank !i;
          incr i
        end
      end
      else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        depth := 1;
        i := !i + 2
      end
      else if c = '"' then begin
        blank !i;
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match source.[!i] with
           | '\\' when !i + 1 < n ->
             blank !i;
             blank (!i + 1);
             incr i
           | '"' ->
             blank !i;
             closed := true
           | _ -> blank !i);
          incr i
        done
      end
      else if c = '\'' && !i + 2 < n && source.[!i + 1] = '\\' then begin
        (* escaped char literal: '\n', '\\', '\034', '\x22' *)
        let j = ref (!i + 2) in
        while !j < n && source.[!j] <> '\'' do
          incr j
        done;
        for k = !i to min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else if c = '\'' && !i + 2 < n && source.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    done;
    Bytes.to_string out

  let is_ident_char = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
    | _ -> false

  (* A pattern occurrence only counts at token boundaries: the preceding
     character must not extend an identifier ("XRandom." is not
     "Random.", though "Stdlib.Random." still is), and — unless the
     pattern itself ends mid-path with '.' — neither may the following
     character ("Sys.times" is not "Sys.time"). *)
  let contains_at haystack pos needle =
    let m = String.length needle in
    pos + m <= String.length haystack
    && String.sub haystack pos m = needle
    && (pos = 0 || not (is_ident_char haystack.[pos - 1]))
    && (needle.[m - 1] = '.'
        || pos + m = String.length haystack
        || not (is_ident_char haystack.[pos + m]))

  type hit = {
    path : string;
    line : int;  (** 1-based *)
    rule : rule;
    text : string;  (** the raw (unstripped) source line, trimmed *)
  }

  let scan_string_hits ?(rules = default_rules) ~source contents =
    let stripped = strip contents in
    let lines = String.split_on_char '\n' stripped in
    let raw_lines = Array.of_list (String.split_on_char '\n' contents) in
    let hits = ref [] in
    List.iteri
      (fun idx line ->
        List.iter
          (fun rule ->
            let hit = ref false in
            String.iteri
              (fun pos _ -> if contains_at line pos rule.pattern then hit := true)
              line;
            if !hit then
              hits :=
                {
                  path = source;
                  line = idx + 1;
                  rule;
                  text =
                    (if idx < Array.length raw_lines then
                       String.trim raw_lines.(idx)
                     else "");
                }
                :: !hits)
          rules)
      lines;
    List.rev !hits

  let finding_of_hit { path; line; rule; text } =
    {
      Finding.kind = Finding.Determinism_hazard;
      severity = Finding.Error;
      source = path;
      summary =
        Printf.sprintf "%s:%d uses %s (%s)" path line rule.pattern rule.reason;
      uids = [];
      pids = [];
      evidence = (if text = "" then [] else [ text ]);
    }

  let scan_string ?rules ~source contents =
    List.map finding_of_hit (scan_string_hits ?rules ~source contents)

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let scan_file_hits ?rules path =
    scan_string_hits ?rules ~source:path (read_file path)

  let scan_file ?rules path = scan_string ?rules ~source:path (read_file path)

  let walk_files ?(exclude_dirs = [ "sim" ]) root =
    let files = ref [] in
    let rec walk dir =
      match Sys.readdir dir with
      | exception Sys_error _ -> ()
      | names ->
        Array.sort String.compare names;
        Array.iter
          (fun name ->
            let path = Filename.concat dir name in
            if Sys.is_directory path then begin
              if not (List.mem name exclude_dirs) then walk path
            end
            else if
              Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
            then files := path :: !files)
          names
    in
    walk root;
    List.sort String.compare !files

  let scan_dir_hits ?rules ?exclude_dirs root =
    List.concat_map
      (fun path -> scan_file_hits ?rules path)
      (walk_files ?exclude_dirs root)

  let scan_dir ?rules ?exclude_dirs root =
    List.concat_map
      (fun path -> scan_file ?rules path)
      (walk_files ?exclude_dirs root)
end
