(** Minimal JSON values: deterministic emission for the analyzer's findings
    files and a strict parser for validating benchmark/analysis artifacts
    (the repository deliberately has no third-party JSON dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation; object keys keep the order
    given, so equal values render byte-identically. Non-finite floats emit
    [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Strict parser for the JSON subset this repository emits (all of RFC 8259
    except that numbers outside the OCaml [int]/[float] ranges are rejected).
    The error string includes the offending byte offset. *)

val member : string -> t -> t option
(** [member key json] looks a key up in an object; [None] for missing keys
    and non-objects. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_str : t -> string option
