(** The detector pipeline: one recorded execution in, findings out.

    Detectors, in report order:

    - {e duplicate-uid}: a uid multicast more than once, or delivered more
      than once by the same process (Error);
    - {e causal-cycle}: the happened-before relation is cyclic, i.e. the
      instrumentation or the run itself is inconsistent (Error; the
      order-sensitive detectors below are skipped for cyclic inputs);
    - {e causal-order}: two transport-related sends delivered in the wrong
      order somewhere — the analyzer's offline mirror of the checker's
      causal oracle (Error);
    - {e hidden-channel}: a declared channel edge with no transport-visible
      happened-before path underneath it — exactly the situation of the
      paper's Figures 1-3 where CATOCS cannot see the ordering that matters
      (Error if some process observably inverted the two sides, Warning if
      the run happened to stay consistent);
    - {e false-causality}: enforced context minus declared semantic
      dependencies minus same-sender traffic, for executions under a
      causal/total discipline that declare semantics (Info per message,
      aggregate in the stats);
    - {e stability-lag}: messages whose worst-case delivery lag is an
      extreme outlier against the run's own distribution (Warning). *)

type config = {
  max_findings_per_kind : int;  (** cap per kind per source (default 40) *)
  stability_min_samples : int;
      (** below this many delivered messages, lag outliers are not judged *)
  stability_sigma : float;  (** outlier if lag > mean + sigma * stddev... *)
  stability_median_factor : float;  (** ...and lag > factor * median *)
}

val default_config : config

type result = {
  source : string;
  hb : Hb.t;
  findings : Finding.t list;
  stats : (string * Json.t) list;
}

val analyze : ?config:config -> Exec.t -> result

val report_json :
  mode:string ->
  ?extra:(string * Finding.t list) list ->
  result list ->
  Json.t
(** Assemble the findings document for a set of analyzed executions plus
    optional extra sources (e.g. the determinism lint), via
    {!Finding.report_to_json}. *)

val all_findings :
  ?extra:(string * Finding.t list) list -> result list -> Finding.t list

val worst_severity : Finding.t list -> Finding.severity option
