type config = {
  max_findings_per_kind : int;
  stability_min_samples : int;
  stability_sigma : float;
  stability_median_factor : float;
}

let default_config =
  {
    max_findings_per_kind = 40;
    stability_min_samples = 20;
    stability_sigma = 4.0;
    stability_median_factor = 3.0;
  }

type result = {
  source : string;
  hb : Hb.t;
  findings : Finding.t list;
  stats : (string * Json.t) list;
}

let cap config findings =
  let rec take n = function
    | [] -> []
    | _ :: _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take config.max_findings_per_kind findings

(* --- duplicate uids --------------------------------------------------------- *)

let detect_duplicates config (e : Exec.t) =
  let send_counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Exec.send) ->
      Hashtbl.replace send_counts s.uid
        (1 + Option.value ~default:0 (Hashtbl.find_opt send_counts s.uid)))
    e.sends;
  let dup_sends =
    Hashtbl.fold (fun uid n acc -> if n > 1 then (uid, n) :: acc else acc)
      send_counts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let deliver_counts : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (d : Exec.delivery) ->
      let key = (d.d_pid, d.d_uid) in
      Hashtbl.replace deliver_counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt deliver_counts key)))
    e.deliveries;
  let dup_delivers =
    Hashtbl.fold
      (fun (pid, uid) n acc -> if n > 1 then (pid, uid, n) :: acc else acc)
      deliver_counts []
    |> List.sort compare
  in
  let send_findings =
    List.map
      (fun (uid, n) ->
        {
          Finding.kind = Finding.Duplicate_uid;
          severity = Finding.Error;
          source = e.exec_label;
          summary = Printf.sprintf "uid u%d multicast %d times" uid n;
          uids = [ uid ];
          pids = [];
          evidence = [];
        })
      dup_sends
  in
  let deliver_findings =
    List.map
      (fun (pid, uid, n) ->
        {
          Finding.kind = Finding.Duplicate_uid;
          severity = Finding.Error;
          source = e.exec_label;
          summary =
            Printf.sprintf "uid u%d delivered %d times at %s" uid n
              (Exec.process_name e pid);
          uids = [ uid ];
          pids = [ pid ];
          evidence = [];
        })
      dup_delivers
  in
  cap config (send_findings @ deliver_findings)

(* --- causal cycle ----------------------------------------------------------- *)

let detect_cycle (e : Exec.t) hb =
  match Hb.find_cycle hb with
  | None -> []
  | Some nodes ->
    [
      {
        Finding.kind = Finding.Causal_cycle;
        severity = Finding.Error;
        source = e.exec_label;
        summary =
          Printf.sprintf "happened-before relation is cyclic (%d-node witness)"
            (List.length nodes);
        uids =
          List.filter_map
            (function
              | Exec.Send_ev u | Exec.Deliver_ev (_, u) -> Some u
              | Exec.Ext_ev _ -> None)
            nodes
          |> List.sort_uniq Int.compare;
        pids = [];
        evidence = List.map (Hb.describe_node e) nodes;
      };
    ]

(* --- per-member delivery positions ------------------------------------------ *)

let delivery_positions (e : Exec.t) =
  (* pid -> (uid -> position of its first delivery in that member's order) *)
  let by_pid : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let counters : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Exec.delivery) ->
      let tbl =
        match Hashtbl.find_opt by_pid d.d_pid with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 32 in
          Hashtbl.add by_pid d.d_pid t;
          Hashtbl.add counters d.d_pid (ref 0);
          t
      in
      let counter = Hashtbl.find counters d.d_pid in
      if not (Hashtbl.mem tbl d.d_uid) then Hashtbl.add tbl d.d_uid !counter;
      incr counter)
    e.deliveries;
  by_pid

(* --- causal order ----------------------------------------------------------- *)

let detect_causal_order config (e : Exec.t) hb positions =
  (* If send(u1) happened-before send(u2) through transport-visible edges,
     every process that delivers both must deliver u1 first. This mirrors
     the checker's causal oracle, reconstructed offline from the DAG — and
     like that oracle it only applies when the run claimed a causal (or
     stronger) discipline: a FIFO-mode run is free to invert cross-process
     causality. Unknown disciplines are checked (hand-built traces). *)
  let applicable =
    match e.ordering with Some Exec.Fifo_order -> false | _ -> true
  in
  let findings = ref [] in
  let count = ref 0 in
  if applicable then
  Hashtbl.iter
    (fun pid tbl ->
      let delivered =
        Hashtbl.fold (fun uid pos acc -> (uid, pos) :: acc) tbl []
        |> List.sort compare
      in
      List.iter
        (fun (u1, p1) ->
          List.iter
            (fun (u2, p2) ->
              if
                u1 <> u2 && p1 > p2
                && Hb.reaches hb ~transport_only:true (Exec.Send_ev u1)
                     (Exec.Send_ev u2)
                && !count < config.max_findings_per_kind
              then begin
                incr count;
                let path =
                  match
                    Hb.shortest_path hb ~transport_only:true (Exec.Send_ev u1)
                      (Exec.Send_ev u2)
                  with
                  | Some edges -> List.map (Hb.describe_edge e) edges
                  | None -> []
                in
                findings :=
                  {
                    Finding.kind = Finding.Causal_order;
                    severity = Finding.Error;
                    source = e.exec_label;
                    summary =
                      Printf.sprintf
                        "%s delivered u%d (position %d) before causally \
                         prior u%d (position %d)"
                        (Exec.process_name e pid) u2 p2 u1 p1;
                    uids = [ u1; u2 ];
                    pids = [ pid ];
                    evidence = path;
                  }
                  :: !findings
              end)
            delivered)
        delivered)
    positions;
  List.sort Finding.compare !findings

(* --- hidden channels -------------------------------------------------------- *)

let upstream_sends (e : Exec.t) hb node =
  List.filter_map
    (fun (s : Exec.send) ->
      if
        Exec.Send_ev s.uid = node
        || Hb.reaches hb (Exec.Send_ev s.uid) node
      then Some s.uid
      else None)
    e.sends

let downstream_sends (e : Exec.t) hb node =
  List.filter_map
    (fun (s : Exec.send) ->
      if
        Exec.Send_ev s.uid = node
        || Hb.reaches hb node (Exec.Send_ev s.uid)
      then Some s.uid
      else None)
    e.sends

let detect_hidden_channels config (e : Exec.t) hb positions =
  let findings =
    List.filter_map
      (fun (c : Exec.channel_edge) ->
        let covered =
          Hb.reaches hb ~transport_only:true c.ch_src c.ch_dst
        in
        if covered then None
        else begin
          (* The constraint exists only out of band. Did any process
             observably order the two sides the wrong way round? Compare
             every send at-or-before the source against every send
             at-or-after the destination, per member. *)
          let ups = upstream_sends e hb c.ch_src in
          let downs = downstream_sends e hb c.ch_dst in
          let inversion = ref None in
          Hashtbl.iter
            (fun pid tbl ->
              List.iter
                (fun u ->
                  List.iter
                    (fun w ->
                      if u <> w && !inversion = None then
                        match (Hashtbl.find_opt tbl u, Hashtbl.find_opt tbl w) with
                        | Some pu, Some pw when pw < pu ->
                          inversion := Some (pid, u, w)
                        | _, _ -> ())
                    downs)
                ups)
            positions;
          let severity, inversion_evidence =
            match !inversion with
            | Some (pid, u, w) ->
              ( Finding.Error,
                [
                  Printf.sprintf
                    "observed inversion: %s delivered downstream u%d before \
                     upstream u%d"
                    (Exec.process_name e pid) w u;
                ] )
            | None -> (Finding.Warning, [])
          in
          Some
            {
              Finding.kind = Finding.Hidden_channel;
              severity;
              source = e.exec_label;
              summary =
                Printf.sprintf
                  "ordering constraint via %s is invisible to the transport \
                   (%s must precede %s)"
                  c.ch_label
                  (Hb.describe_node e c.ch_src)
                  (Hb.describe_node e c.ch_dst);
              uids =
                List.sort_uniq Int.compare
                  (List.filter_map
                     (function
                       | Exec.Send_ev u -> Some u
                       | Exec.Deliver_ev (_, u) -> Some u
                       | Exec.Ext_ev _ -> None)
                     [ c.ch_src; c.ch_dst ]);
              pids = [];
              evidence =
                (Printf.sprintf "no transport-visible path %s -> %s"
                   (Hb.describe_node e c.ch_src)
                   (Hb.describe_node e c.ch_dst)
                :: inversion_evidence);
            }
        end)
      e.channel_edges
  in
  cap config findings

(* --- false causality -------------------------------------------------------- *)

let detect_false_causality config (e : Exec.t) =
  (* Only meaningful when the run enforced a causal (or stronger) discipline
     and the application declared what it actually depends on. *)
  let enforced =
    match e.ordering with
    | Some Exec.Causal_order | Some Exec.Total_order -> true
    | Some Exec.Fifo_order | None -> false
  in
  let total_context = ref 0 in
  let false_context = ref 0 in
  let declared = ref 0 in
  let findings = ref [] in
  if enforced then
    List.iter
      (fun (s : Exec.send) ->
        match s.semantic with
        | None -> ()
        | Some deps ->
          incr declared;
          total_context := !total_context + List.length s.context;
          let same_sender u =
            match Exec.find_send e u with
            | Some s' -> s'.sender = s.sender
            | None -> false
          in
          let false_deps =
            List.filter
              (fun u -> u <> s.uid && (not (List.mem u deps)) && not (same_sender u))
              s.context
          in
          if false_deps <> [] then begin
            false_context := !false_context + List.length false_deps;
            findings :=
              {
                Finding.kind = Finding.False_causality;
                severity = Finding.Info;
                source = e.exec_label;
                summary =
                  Printf.sprintf
                    "u%d from %s: %d of %d context entries are false \
                     causality (declared deps: %d)"
                    s.uid
                    (Exec.process_name e s.sender)
                    (List.length false_deps) (List.length s.context)
                    (List.length deps);
                uids = s.uid :: false_deps;
                pids = [ s.sender ];
                evidence =
                  [
                    Printf.sprintf "false context entries: %s"
                      (String.concat ", "
                         (List.map (Printf.sprintf "u%d") false_deps));
                  ];
              }
              :: !findings
          end)
      e.sends;
  let stats =
    [
      ("declared_semantic_sends", Json.Int !declared);
      ("context_entries", Json.Int !total_context);
      ("false_context_entries", Json.Int !false_context);
    ]
  in
  (cap config (List.rev !findings), stats)

(* --- stability lag ---------------------------------------------------------- *)

let detect_stability_lag config (e : Exec.t) =
  let worst : (int, Sim_time.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (d : Exec.delivery) ->
      match Exec.find_send e d.d_uid with
      | None -> ()
      | Some s ->
        let lag = Sim_time.sub d.d_at s.sent_at in
        (match Hashtbl.find_opt worst d.d_uid with
         | Some prev when Sim_time.compare prev lag >= 0 -> ()
         | Some _ | None -> Hashtbl.replace worst d.d_uid lag))
    e.deliveries;
  let lags = Hashtbl.fold (fun uid lag acc -> (uid, lag) :: acc) worst [] in
  if List.length lags < config.stability_min_samples then []
  else begin
    let values =
      List.map (fun (_, lag) -> float_of_int (Sim_time.to_us lag)) lags
    in
    let n = float_of_int (List.length values) in
    let mean = List.fold_left ( +. ) 0.0 values /. n in
    let var =
      List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. n
    in
    let std = sqrt var in
    let sorted = List.sort Float.compare values in
    let median = List.nth sorted (List.length values / 2) in
    let threshold =
      Float.max
        (mean +. (config.stability_sigma *. std))
        (config.stability_median_factor *. median)
    in
    let outliers =
      List.filter
        (fun (_, lag) -> float_of_int (Sim_time.to_us lag) > threshold)
        lags
      |> List.sort compare
    in
    cap config
      (List.map
         (fun (uid, lag) ->
           {
             Finding.kind = Finding.Stability_lag;
             severity = Finding.Warning;
             source = e.exec_label;
             summary =
               Printf.sprintf
                 "u%d took %dus to reach all deliveries (run median %.0fus, \
                  mean %.0fus)"
                 uid (Sim_time.to_us lag) median mean;
             uids = [ uid ];
             pids = [];
             evidence = [];
           })
         outliers)
  end

(* --- pipeline --------------------------------------------------------------- *)

let analyze ?(config = default_config) (e : Exec.t) =
  let hb = Hb.build e in
  let duplicates = detect_duplicates config e in
  let cycle = detect_cycle e hb in
  let positions = delivery_positions e in
  let order_sensitive =
    if cycle <> [] then []
    else
      detect_causal_order config e hb positions
      @ detect_hidden_channels config e hb positions
  in
  let false_causality, fc_stats = detect_false_causality config e in
  let stability = detect_stability_lag config e in
  let findings =
    List.sort Finding.compare
      (duplicates @ cycle @ order_sensitive @ false_causality @ stability)
  in
  let stats =
    [
      ("processes", Json.Int (List.length e.processes));
      ("sends", Json.Int (List.length e.sends));
      ("deliveries", Json.Int (List.length e.deliveries));
      ("externals", Json.Int (List.length e.externals));
      ("channel_edges", Json.Int (List.length e.channel_edges));
      ("hb_nodes", Json.Int (Hb.node_count hb));
      ("hb_edges", Json.Int (List.length (Hb.edges hb)));
    ]
    @ fc_stats
  in
  { source = e.exec_label; hb; findings; stats }

let all_findings ?(extra = []) results =
  List.concat_map (fun r -> r.findings) results
  @ List.concat_map snd extra
  |> List.sort Finding.compare

let report_json ~mode ?(extra = []) results =
  let sources =
    List.map (fun r -> (r.source, r.stats)) results
    @ List.map (fun (name, _) -> (name, [])) extra
  in
  Finding.report_to_json ~mode ~sources (all_findings ~extra results)

let worst_severity findings =
  List.fold_left
    (fun acc (f : Finding.t) ->
      match acc with
      | None -> Some f.severity
      | Some s ->
        if Finding.compare_severity f.severity s > 0 then Some f.severity
        else acc)
    None findings
