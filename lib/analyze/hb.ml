type provenance = Fifo | Local | Delivery | External of string

type edge = { src : Exec.node; dst : Exec.node; why : provenance }

type t = {
  exec : Exec.t;
  nodes : Exec.node array;  (* index -> node *)
  index : (Exec.node, int) Hashtbl.t;
  succ : (int * provenance) list array;  (* reduced, deterministic order *)
  raw_succ : int list array;  (* pre-reduction, for cycle search *)
  cyclic : bool;
  (* Strict forward-reachability bitsets, one per source, computed lazily;
     keyed separately for the full relation and the transport-only one. *)
  reach_full : (int, Bytes.t) Hashtbl.t;
  reach_transport : (int, Bytes.t) Hashtbl.t;
}

let exec t = t.exec
let node_count t = Array.length t.nodes

(* --- construction ----------------------------------------------------------- *)

let provenance_rank = function
  | Delivery -> 0
  | Fifo -> 1
  | Local -> 2
  | External _ -> 3

let transport_visible = function
  | Fifo | Local | Delivery -> true
  | External _ -> false

let collect_nodes (e : Exec.t) =
  let index = Hashtbl.create 64 in
  let order = ref [] in
  let n = ref 0 in
  let add node =
    if not (Hashtbl.mem index node) then begin
      Hashtbl.add index node !n;
      incr n;
      order := node :: !order
    end
  in
  List.iter (fun (s : Exec.send) -> add (Exec.Send_ev s.uid)) e.sends;
  List.iter (fun (d : Exec.delivery) -> add (Exec.Deliver_ev (d.d_pid, d.d_uid))) e.deliveries;
  List.iter (fun (x : Exec.ext_event) -> add (Exec.Ext_ev x.ext_id)) e.externals;
  List.iter
    (fun (c : Exec.channel_edge) ->
      add c.ch_src;
      add c.ch_dst)
    e.channel_edges;
  let nodes = Array.of_list (List.rev !order) in
  (nodes, index)

(* Raw edge list, before reduction: program order per process, send-to-
   delivery edges, declared channel edges. Duplicate sends of the same uid
   collapse onto one Send_ev node, so their program-order edges merge. *)
let raw_edges (e : Exec.t) index =
  let edges = ref [] in
  let add src dst why =
    let si = Hashtbl.find index src and di = Hashtbl.find index dst in
    if si <> di then edges := (si, di, why) :: !edges
  in
  let by_pid : (int, (int * Exec.node * bool) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let push pid pseq node is_send =
    let cell =
      match Hashtbl.find_opt by_pid pid with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add by_pid pid c;
        c
    in
    cell := (pseq, node, is_send) :: !cell
  in
  List.iter
    (fun (s : Exec.send) -> push s.sender s.send_pseq (Exec.Send_ev s.uid) true)
    e.sends;
  List.iter
    (fun (d : Exec.delivery) ->
      push d.d_pid d.d_pseq (Exec.Deliver_ev (d.d_pid, d.d_uid)) false)
    e.deliveries;
  List.iter
    (fun (x : Exec.ext_event) ->
      push x.ext_pid x.ext_pseq (Exec.Ext_ev x.ext_id) false)
    e.externals;
  Hashtbl.iter
    (fun _pid cell ->
      let events =
        List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !cell
      in
      let rec link = function
        | (_, a, a_send) :: ((_, b, b_send) :: _ as rest) ->
          add a b (if a_send && b_send then Fifo else Local);
          link rest
        | [ _ ] | [] -> ()
      in
      link events)
    by_pid;
  let send_exists uid = Hashtbl.mem index (Exec.Send_ev uid) in
  List.iter
    (fun (d : Exec.delivery) ->
      if send_exists d.d_uid then
        add (Exec.Send_ev d.d_uid) (Exec.Deliver_ev (d.d_pid, d.d_uid)) Delivery)
    e.deliveries;
  List.iter
    (fun (c : Exec.channel_edge) -> add c.ch_src c.ch_dst (External c.ch_label))
    e.channel_edges;
  !edges

(* Kahn's algorithm; on failure, walk maximal-in-degree leftovers to produce
   a witness cycle. Returns a topological order when acyclic. *)
let topo_order n succ =
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun d -> indegree.(d) <- indegree.(d) + 1)) succ;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    List.iter
      (fun v ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      succ.(u)
  done;
  if !seen = n then Some (List.rev !order) else None

let witness_cycle n succ =
  (* Nodes still carrying in-degree after Kahn form the cyclic core; follow
     successors inside the core until a node repeats. *)
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun d -> indegree.(d) <- indegree.(d) + 1)) succ;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      succ.(u)
  done;
  let in_core i = indegree.(i) > 0 in
  let start = ref None in
  Array.iteri (fun i d -> if d > 0 && !start = None then start := Some i) indegree;
  match !start with
  | None -> None
  | Some start ->
    let visited_at = Hashtbl.create 16 in
    let path = ref [] in
    let rec walk u steps =
      match Hashtbl.find_opt visited_at u with
      | Some at ->
        (* keep the suffix of the walk from the first visit of [u] *)
        let cycle =
          List.rev !path
          |> List.filteri (fun i _ -> i >= at)
        in
        Some cycle
      | None ->
        Hashtbl.add visited_at u steps;
        path := u :: !path;
        (match List.find_opt in_core succ.(u) with
         | Some v -> walk v (steps + 1)
         | None -> None)
    in
    walk start 0

(* Strict reachability from [src] over the chosen edge set. *)
let bfs_reach n succ ~visible src =
  let reached = Bytes.make n '\000' in
  let queue = Queue.create () in
  let push v =
    if Bytes.get reached v = '\000' then begin
      Bytes.set reached v '\001';
      Queue.add v queue
    end
  in
  List.iter (fun (v, why) -> if visible why then push v) succ.(src);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter (fun (v, why) -> if visible why then push v) succ.(u)
  done;
  reached

let build (e : Exec.t) =
  let nodes, index = collect_nodes e in
  let n = Array.length nodes in
  let raw = raw_edges e index in
  (* Parallel edges collapse onto the strongest provenance so the reduced
     graph has at most one edge per (src, dst). *)
  let best : (int * int, provenance) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s, d, why) ->
      match Hashtbl.find_opt best (s, d) with
      | Some prev when provenance_rank prev <= provenance_rank why -> ()
      | Some _ | None -> Hashtbl.replace best (s, d) why)
    raw;
  let raw_succ = Array.make n [] in
  Hashtbl.iter (fun (s, d) _why -> raw_succ.(s) <- d :: raw_succ.(s)) best;
  Array.iteri
    (fun i succs -> raw_succ.(i) <- List.sort_uniq Int.compare succs)
    raw_succ;
  let cyclic = topo_order n raw_succ = None in
  let typed_succ = Array.make n [] in
  Hashtbl.iter
    (fun (s, d) why -> typed_succ.(s) <- (d, why) :: typed_succ.(s))
    best;
  Array.iteri
    (fun i succs ->
      typed_succ.(i) <-
        List.sort (fun (a, _) (b, _) -> Int.compare a b) succs)
    typed_succ;
  let succ =
    if cyclic then typed_succ
    else begin
      (* Transitive reduction: drop u->v when some other direct successor w
         of u already reaches v. Strict BFS reach per candidate w, cached. *)
      let cache = Hashtbl.create 64 in
      let reach w =
        match Hashtbl.find_opt cache w with
        | Some r -> r
        | None ->
          let r = bfs_reach n typed_succ ~visible:(fun _ -> true) w in
          Hashtbl.add cache w r;
          r
      in
      Array.map
        (fun succs ->
          List.filter
            (fun (v, _why) ->
              not
                (List.exists
                   (fun (w, _) -> w <> v && Bytes.get (reach w) v = '\001')
                   succs))
            succs)
        typed_succ
    end
  in
  {
    exec = e;
    nodes;
    index;
    succ;
    raw_succ;
    cyclic;
    reach_full = Hashtbl.create 16;
    reach_transport = Hashtbl.create 16;
  }

(* --- queries ---------------------------------------------------------------- *)

let edges t =
  let out = ref [] in
  for i = Array.length t.succ - 1 downto 0 do
    List.iter
      (fun (j, why) ->
        out := { src = t.nodes.(i); dst = t.nodes.(j); why } :: !out)
      (List.rev t.succ.(i))
  done;
  !out

let find_cycle t =
  if not t.cyclic then None
  else
    match witness_cycle (Array.length t.nodes) t.raw_succ with
    | None -> None
    | Some ids -> Some (List.map (fun i -> t.nodes.(i)) ids)

let reach_set t ~transport_only src =
  let cache, visible =
    if transport_only then (t.reach_transport, transport_visible)
    else (t.reach_full, fun _ -> true)
  in
  match Hashtbl.find_opt cache src with
  | Some r -> r
  | None ->
    let r = bfs_reach (Array.length t.nodes) t.succ ~visible src in
    Hashtbl.add cache src r;
    r

let reaches t ?(transport_only = false) a b =
  match (Hashtbl.find_opt t.index a, Hashtbl.find_opt t.index b) with
  | Some ia, Some ib ->
    Bytes.get (reach_set t ~transport_only ia) ib = '\001'
  | _, _ -> false

let shortest_path t ?(transport_only = false) a b =
  match (Hashtbl.find_opt t.index a, Hashtbl.find_opt t.index b) with
  | Some ia, Some ib ->
    let n = Array.length t.nodes in
    let parent = Array.make n None in
    let seen = Bytes.make n '\000' in
    let queue = Queue.create () in
    Bytes.set seen ia '\001';
    Queue.add ia queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (v, why) ->
          let visible = (not transport_only) || transport_visible why in
          if visible && Bytes.get seen v = '\000' then begin
            Bytes.set seen v '\001';
            parent.(v) <- Some (u, why);
            if v = ib then found := true else Queue.add v queue
          end)
        t.succ.(u)
    done;
    if not !found then None
    else begin
      let rec unwind v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, why) ->
          let e = { src = t.nodes.(u); dst = t.nodes.(v); why } in
          if u = ia then e :: acc else unwind u (e :: acc)
      in
      Some (unwind ib [])
    end
  | _, _ -> None

(* --- rendering -------------------------------------------------------------- *)

let describe_node (e : Exec.t) = function
  | Exec.Send_ev uid ->
    (match Exec.find_send e uid with
     | Some s ->
       Printf.sprintf "send u%d by %s" uid (Exec.process_name e s.sender)
     | None -> Printf.sprintf "send u%d" uid)
  | Exec.Deliver_ev (pid, uid) ->
    Printf.sprintf "deliver u%d at %s" uid (Exec.process_name e pid)
  | Exec.Ext_ev id ->
    (match List.find_opt (fun (x : Exec.ext_event) -> x.ext_id = id) e.externals with
     | Some x ->
       Printf.sprintf "%s at %s" x.ext_label (Exec.process_name e x.ext_pid)
     | None -> Printf.sprintf "external event %d" id)

let provenance_name = function
  | Fifo -> "fifo"
  | Local -> "local"
  | Delivery -> "delivery"
  | External label -> Printf.sprintf "external: %s" label

let describe_edge (e : Exec.t) edge =
  Printf.sprintf "%s -> %s [%s]"
    (describe_node e edge.src)
    (describe_node e edge.dst)
    (provenance_name edge.why)
