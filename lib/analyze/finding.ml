type kind =
  | Hidden_channel
  | False_causality
  | Causal_order
  | Causal_cycle
  | Duplicate_uid
  | Stability_lag
  | Determinism_hazard
  | Shared_mutable
  | Aliasing_hazard
  | Contract_violation
  (* runtime-watchdog findings (Obs.Watch rules replayed over telemetry) *)
  | Stability_stall
  | Buffer_growth
  | Ordering_outlier
  | Copy_conservation
  | Duplicate_copy_rate

type severity = Info | Warning | Error

type t = {
  kind : kind;
  severity : severity;
  source : string;
  summary : string;
  uids : int list;
  pids : int list;
  evidence : string list;
}

let kind_name = function
  | Hidden_channel -> "hidden-channel"
  | False_causality -> "false-causality"
  | Causal_order -> "causal-order"
  | Causal_cycle -> "causal-cycle"
  | Duplicate_uid -> "duplicate-uid"
  | Stability_lag -> "stability-lag"
  | Determinism_hazard -> "determinism-hazard"
  | Shared_mutable -> "shared-mutable"
  | Aliasing_hazard -> "aliasing-hazard"
  | Contract_violation -> "contract-violation"
  | Stability_stall -> "stability-stall"
  | Buffer_growth -> "buffer-growth"
  | Ordering_outlier -> "ordering-outlier"
  | Copy_conservation -> "copy-conservation"
  | Duplicate_copy_rate -> "duplicate-copy-rate"

let all_kinds =
  [
    Hidden_channel;
    False_causality;
    Causal_order;
    Causal_cycle;
    Duplicate_uid;
    Stability_lag;
    Determinism_hazard;
    Shared_mutable;
    Aliasing_hazard;
    Contract_violation;
    Stability_stall;
    Buffer_growth;
    Ordering_outlier;
    Copy_conservation;
    Duplicate_copy_rate;
  ]

let kind_of_name name =
  List.find_opt (fun k -> kind_name k = name) all_kinds

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let kind_rank k =
  let rec find i = function
    | [] -> i
    | k' :: rest -> if k' = k then i else find (i + 1) rest
  in
  find 0 all_kinds

let compare a b =
  let c = compare_severity b.severity a.severity in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.uids b.uids in
      if c <> 0 then c else String.compare a.summary b.summary

let to_json f =
  Json.Obj
    [
      ("kind", Json.Str (kind_name f.kind));
      ("severity", Json.Str (severity_name f.severity));
      ("source", Json.Str f.source);
      ("summary", Json.Str f.summary);
      ("uids", Json.Arr (List.map (fun u -> Json.Int u) f.uids));
      ("pids", Json.Arr (List.map (fun p -> Json.Int p) f.pids));
      ("evidence", Json.Arr (List.map (fun e -> Json.Str e) f.evidence));
    ]

let report_to_json ~mode ~sources findings =
  let findings = List.sort compare findings in
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) findings)
  in
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("tool", Json.Str "repro-analyze");
      ("mode", Json.Str mode);
      ( "sources",
        Json.Arr
          (List.map
             (fun (name, stats) ->
               Json.Obj (("source", Json.Str name) :: stats))
             sources) );
      ("findings", Json.Arr (List.map to_json findings));
      ( "counts",
        Json.Obj
          [
            ("error", Json.Int (count Error));
            ("warning", Json.Int (count Warning));
            ("info", Json.Int (count Info));
          ] );
    ]

let pp ppf f =
  Format.fprintf ppf "[%s] %s: %s" (severity_name f.severity) (kind_name f.kind)
    f.summary;
  List.iter (fun line -> Format.fprintf ppf "@.    %s" line) f.evidence
