(** Analyzer findings and their stable JSON form.

    [ANALYZE_findings.json] is consumed by CI and by tests, so the encoding
    here is a schema: field names and kind/severity spellings are stable,
    and additions must be backward compatible (bump [schema_version] on any
    breaking change). *)

type kind =
  | Hidden_channel
      (** a declared ordering constraint travels outside the transport *)
  | False_causality
      (** enforced potential causality exceeds declared semantic needs *)
  | Causal_order  (** a delivery violates causal order (analyzer's view) *)
  | Causal_cycle  (** the happened-before relation is cyclic *)
  | Duplicate_uid  (** a uid sent or delivered more than once at a process *)
  | Stability_lag  (** a message's delivery lag is an extreme outlier *)
  | Determinism_hazard  (** source-level nondeterminism outside [lib/sim] *)
  | Shared_mutable
      (** module-level mutable state (the surface a domain-sharding refactor
          must partition): top-level refs, mutable record fields, module-level
          hash tables — reported by [repro-lint]'s aliasing inventory *)
  | Aliasing_hazard
      (** structural equality on values whose discipline is physical sharing
          (interned clock rows compare by [==], not [=]) *)
  | Contract_violation
      (** a repo-level protocol contract is broken: a chaos hook with no
          test/ mutation conviction, or a [Config] dispatch variant missing
          from the checker, scaling or bench families *)
  | Stability_stall
      (** watchdog: delivered messages still unstable long after delivery —
          gossip/minima propagation has stalled *)
  | Buffer_growth
      (** watchdog: the unstable-buffer gauge grows monotonically across
          the configured window — Section 5's buffering cost as an alarm *)
  | Ordering_outlier
      (** watchdog: ordering-wait p999 is orders of magnitude above p50 *)
  | Copy_conservation
      (** watchdog: registry copy counters disagree with the hop census in
          the telemetry log — an instrumentation point was dropped *)
  | Duplicate_copy_rate
      (** watchdog: duplicate dissemination copies exceed the configured
          rate (PC full-mesh redundancy is reported at [Info]) *)

type severity = Info | Warning | Error

type t = {
  kind : kind;
  severity : severity;
  source : string;  (** which execution / file produced it *)
  summary : string;
  uids : int list;
  pids : int list;
  evidence : string list;  (** human-readable path / line references *)
}

val kind_name : kind -> string
(** Stable kebab-case spelling, e.g. ["hidden-channel"]. *)

val kind_of_name : string -> kind option

val severity_name : severity -> string
val compare_severity : severity -> severity -> int
(** Orders [Error] highest. *)

val compare : t -> t -> int
(** Report order: descending severity, then kind, then uids, then summary. *)

val to_json : t -> Json.t

val report_to_json :
  mode:string -> sources:(string * (string * Json.t) list) list -> t list -> Json.t
(** The full findings document: [schema_version], [tool], [mode], per-source
    stats, sorted findings, and severity counts. *)

val pp : Format.formatter -> t -> unit
