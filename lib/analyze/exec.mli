(** Recorded executions: the analyzer's input.

    An execution is the application-level history of one run — multicast
    sends with their recorded potential-causality contexts (the
    [Oracle.send_info] view: everything the sender had delivered or sent
    beforehand), per-process delivery sequences, external events (database
    writes, physical-world observations, out-of-band point-to-point traffic)
    and {e channel edges}: ordering constraints the application knows about
    that travel outside the communication substrate. Channel edges are what
    the hidden-channel detector audits: each one is checked against the
    transport-level happened-before relation.

    Executions come from three producers: {!Recorder} (live instrumentation
    hooks in apps and experiments), [Oracle.to_exec] in [lib/check] (checker
    runs), and {!of_trace} ([Sim.Trace] event logs, including hand-built
    traces in tests). *)

type ordering_discipline = Fifo_order | Causal_order | Total_order

val ordering_name : ordering_discipline -> string

(** A node of the happened-before DAG, identified by its role. *)
type node =
  | Send_ev of int  (** multicast send of the uid *)
  | Deliver_ev of int * int  (** delivery: process id, uid *)
  | Ext_ev of int  (** external event id *)

type send = {
  uid : int;
  sender : int;
  sender_seq : int;  (** per-sender send counter, 0-based *)
  sent_at : Sim_time.t;
  send_pseq : int;  (** program-order index within the sender's events *)
  context : int list;
      (** potential causality: uids the sender had delivered or sent *)
  semantic : int list option;
      (** application-declared semantic dependencies; [None] = undeclared
          (the analyzer quantifies false causality only when declared) *)
}

type delivery = {
  d_pid : int;
  d_uid : int;
  d_at : Sim_time.t;
  d_pseq : int;
}

type ext_event = {
  ext_id : int;
  ext_pid : int;
  ext_at : Sim_time.t;
  ext_label : string;
  ext_pseq : int;
}

type channel_edge = {
  ch_src : node;
  ch_dst : node;
  ch_label : string;  (** what carried the constraint, e.g. "shared database" *)
}

type t = {
  exec_label : string;  (** source description, e.g. ["cbcast seed 12"] *)
  ordering : ordering_discipline option;
  processes : (int * string) list;  (** pid, display name *)
  sends : send list;  (** chronological *)
  deliveries : delivery list;  (** chronological *)
  externals : ext_event list;
  channel_edges : channel_edge list;
}

val process_name : t -> int -> string
val find_send : t -> int -> send option

(** Imperative builder used by instrumentation hooks. Processes are
    registered implicitly on first use (with a [p<pid>] placeholder name)
    or explicitly via {!Recorder.add_process}; per-process program order and
    potential-causality contexts are tracked automatically. *)
module Recorder : sig
  type exec := t
  type t

  val create :
    ?ordering:ordering_discipline -> label:string -> unit -> t

  val add_process : t -> pid:int -> name:string -> unit

  val note_send :
    t -> ?semantic:int list -> sender:int -> at:Sim_time.t -> unit -> int
  (** Returns the fresh uid. [semantic] declares the message's true
      application-level dependencies ([Some []] = independent of everything
      but its own sender's stream). *)

  val note_delivery : t -> pid:int -> uid:int -> at:Sim_time.t -> unit

  val note_external : t -> pid:int -> at:Sim_time.t -> label:string -> node
  (** Record an external event in [pid]'s program order (a database write,
      a physical observation, an out-of-band receive); returns its node for
      use in {!note_channel}. *)

  val note_channel : t -> src:node -> dst:node -> label:string -> unit
  (** Declare an out-of-band ordering constraint: [src] is known by the
      application to precede [dst] via [label]. *)

  val note_order_requirement :
    t -> before:int -> after:int -> via:string -> unit
  (** Channel edge between two multicast sends: the application requires
      [before]'s multicast to be applied before [after]'s. *)

  val exec : t -> exec
  (** Snapshot the recording (the recorder remains usable). *)
end

val of_trace :
  ?label:string ->
  ?ordering:ordering_discipline ->
  Trace.entry list ->
  t
(** Ingest a [Sim.Trace] event log. [Send] entries allocate one uid per
    distinct label ([Send] of an already-seen label records a duplicate send
    of that uid, which the analyzer flags); [Deliver] entries must reference
    a previously sent label (raises [Invalid_argument] otherwise); [Mark]
    entries become external events; [Recv] entries (transport arrival, not
    an application event) are ignored. *)

val of_log :
  ?label:string ->
  ?ordering:ordering_discipline ->
  ?names:(int * string) list ->
  Repro_obs.Log.t ->
  t
(** Ingest a structured telemetry log ([lib/obs]): [Span_send] records
    become sends (the log's wire message ids are re-mapped to dense
    recorder uids) and [Span_delivered] records become deliveries. A
    delivery whose send is not in the log — e.g. overwritten after the
    ring filled — raises [Invalid_argument]. [names] labels processes as
    in {!Recorder.add_process}. Intermediate lifecycle records (recv,
    queued, stable), flush markers, retransmissions and gauges carry no
    happened-before information and are skipped. *)
