type ordering_discipline = Fifo_order | Causal_order | Total_order

let ordering_name = function
  | Fifo_order -> "fifo"
  | Causal_order -> "causal"
  | Total_order -> "total"

type node =
  | Send_ev of int
  | Deliver_ev of int * int
  | Ext_ev of int

type send = {
  uid : int;
  sender : int;
  sender_seq : int;
  sent_at : Sim_time.t;
  send_pseq : int;
  context : int list;
  semantic : int list option;
}

type delivery = {
  d_pid : int;
  d_uid : int;
  d_at : Sim_time.t;
  d_pseq : int;
}

type ext_event = {
  ext_id : int;
  ext_pid : int;
  ext_at : Sim_time.t;
  ext_label : string;
  ext_pseq : int;
}

type channel_edge = {
  ch_src : node;
  ch_dst : node;
  ch_label : string;
}

type t = {
  exec_label : string;
  ordering : ordering_discipline option;
  processes : (int * string) list;
  sends : send list;
  deliveries : delivery list;
  externals : ext_event list;
  channel_edges : channel_edge list;
}

let process_name t pid =
  match List.assoc_opt pid t.processes with
  | Some name -> name
  | None -> Printf.sprintf "p%d" pid

let find_send t uid = List.find_opt (fun s -> s.uid = uid) t.sends

module Recorder = struct
  (* Per-process recording state: program-order counter plus the sender's
     potential-causality context (uids delivered or sent so far), mirroring
     what Oracle.note_send captures for checker runs. *)
  type proc = {
    mutable name : string;
    mutable pseq : int;
    mutable known : int list;  (* reverse order, may repeat *)
    mutable sent_count : int;
  }

  type t = {
    label : string;
    r_ordering : ordering_discipline option;
    procs : (int, proc) Hashtbl.t;
    mutable next_uid : int;
    mutable next_ext : int;
    mutable sends_rev : send list;
    mutable deliveries_rev : delivery list;
    mutable externals_rev : ext_event list;
    mutable channels_rev : channel_edge list;
  }

  let create ?ordering ~label () =
    {
      label;
      r_ordering = ordering;
      procs = Hashtbl.create 8;
      next_uid = 0;
      next_ext = 0;
      sends_rev = [];
      deliveries_rev = [];
      externals_rev = [];
      channels_rev = [];
    }

  let proc t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some p -> p
    | None ->
      let p =
        { name = Printf.sprintf "p%d" pid; pseq = 0; known = []; sent_count = 0 }
      in
      Hashtbl.add t.procs pid p;
      p

  let add_process t ~pid ~name = (proc t pid).name <- name

  let next_pseq p =
    let s = p.pseq in
    p.pseq <- s + 1;
    s

  let note_send t ?semantic ~sender ~at () =
    let p = proc t sender in
    let uid = t.next_uid in
    t.next_uid <- uid + 1;
    let context = List.sort_uniq Int.compare p.known in
    let entry =
      {
        uid;
        sender;
        sender_seq = p.sent_count;
        sent_at = at;
        send_pseq = next_pseq p;
        context;
        semantic;
      }
    in
    p.sent_count <- p.sent_count + 1;
    p.known <- uid :: p.known;
    t.sends_rev <- entry :: t.sends_rev;
    uid

  let note_delivery t ~pid ~uid ~at =
    let p = proc t pid in
    let entry = { d_pid = pid; d_uid = uid; d_at = at; d_pseq = next_pseq p } in
    p.known <- uid :: p.known;
    t.deliveries_rev <- entry :: t.deliveries_rev

  let note_external t ~pid ~at ~label =
    let p = proc t pid in
    let ext_id = t.next_ext in
    t.next_ext <- ext_id + 1;
    let entry =
      { ext_id; ext_pid = pid; ext_at = at; ext_label = label; ext_pseq = next_pseq p }
    in
    t.externals_rev <- entry :: t.externals_rev;
    Ext_ev ext_id

  let note_channel t ~src ~dst ~label =
    t.channels_rev <- { ch_src = src; ch_dst = dst; ch_label = label } :: t.channels_rev

  let note_order_requirement t ~before ~after ~via =
    note_channel t ~src:(Send_ev before) ~dst:(Send_ev after) ~label:via

  let exec t =
    let processes =
      Hashtbl.fold (fun pid p acc -> (pid, p.name) :: acc) t.procs []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    {
      exec_label = t.label;
      ordering = t.r_ordering;
      processes;
      sends = List.rev t.sends_rev;
      deliveries = List.rev t.deliveries_rev;
      externals = List.rev t.externals_rev;
      channel_edges = List.rev t.channels_rev;
    }
end

let of_trace ?(label = "trace") ?ordering entries =
  let r = Recorder.create ?ordering ~label () in
  let uids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.kind with
      | Trace.Send ->
        (match Hashtbl.find_opt uids e.label with
         | None ->
           let uid = Recorder.note_send r ~sender:e.pid ~at:e.time () in
           Hashtbl.add uids e.label uid
         | Some uid ->
           (* A second Send of the same label records a duplicate send of the
              same uid: bypass the uid allocator but keep program order. *)
           let p = Recorder.proc r e.pid in
           let entry =
             {
               uid;
               sender = e.pid;
               sender_seq = p.Recorder.sent_count;
               sent_at = e.time;
               send_pseq = Recorder.next_pseq p;
               context = List.sort_uniq Int.compare p.Recorder.known;
               semantic = None;
             }
           in
           p.Recorder.sent_count <- p.Recorder.sent_count + 1;
           r.Recorder.sends_rev <- entry :: r.Recorder.sends_rev)
      | Trace.Deliver ->
        (match Hashtbl.find_opt uids e.label with
         | Some uid -> Recorder.note_delivery r ~pid:e.pid ~uid ~at:e.time
         | None ->
           invalid_arg
             (Printf.sprintf
                "Exec.of_trace: delivery of unknown message %S at pid %d"
                e.label e.pid))
      | Trace.Mark ->
        ignore (Recorder.note_external r ~pid:e.pid ~at:e.time ~label:e.label)
      | Trace.Recv -> ())
    entries;
  Recorder.exec r

let of_log ?(label = "obs log") ?ordering ?(names = []) log =
  let r = Recorder.create ?ordering ~label () in
  List.iter (fun (pid, name) -> Recorder.add_process r ~pid ~name) names;
  (* obs uid -> recorder uid: the log's ids are wire msg ids, the
     recorder allocates its own dense sequence *)
  let uids : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Repro_obs.Log.iter log (fun { Repro_obs.Event.at; event; _ } ->
      match event with
      | Repro_obs.Event.Span_send { uid; pid; bytes = _ } ->
        Hashtbl.replace uids uid (Recorder.note_send r ~sender:pid ~at ())
      | Repro_obs.Event.Span_delivered { uid; pid } ->
        (match Hashtbl.find_opt uids uid with
         | Some u -> Recorder.note_delivery r ~pid ~uid:u ~at
         | None ->
           invalid_arg
             (Printf.sprintf
                "Exec.of_log: delivery of unknown message uid %d at pid %d"
                uid pid))
      | Repro_obs.Event.Span_recv _ | Repro_obs.Event.Span_queued _
      | Repro_obs.Event.Span_stable _ | Repro_obs.Event.View_flush_start _
      | Repro_obs.Event.View_flush_end _ | Repro_obs.Event.Retransmit _
      | Repro_obs.Event.Gauge_sample _ | Repro_obs.Event.Hop_send _
      | Repro_obs.Event.Hop_suppress _ | Repro_obs.Event.Hop_park _ -> ());
  Recorder.exec r
