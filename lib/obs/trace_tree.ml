(* Dissemination-tree reconstruction from the obs log.

   Every copy of a multicast that leaves a node is a [Hop_send] record
   (origin fanout, PC/hybrid forward, park-buffer drain, barrier resend);
   hybrid suppressions and parks are [Hop_suppress]/[Hop_park]. A message's
   tree is rebuilt by picking, for every reached pid, the *earliest* hop
   that targeted it — that hop's sender is the pid's parent. Later hops to
   an already-reached pid render as duplicate-copy leaves, which is exactly
   the redundancy hybrid buffering is designed to suppress.

   All collections are sorted on scalar fields before rendering, so the
   output depends only on the record *set*, never on log order — a
   synchronized log filled under [Engine.Parallel] renders byte-identically
   at every domain count. *)

type hop = {
  at : Sim_time.t;
  src : int;
  dst : int;
  kind : Event.hop_kind;
}

type mark = Suppress | Park

type t = {
  uid : int;
  origin : int;
  sent_at : Sim_time.t;
  bytes : int;
  hops : hop list;                        (* every copy sent, sorted *)
  marks : (Sim_time.t * int * int * mark) list;  (* (at, src, dst, what) *)
  delivered : (int * Sim_time.t) list;    (* pid -> earliest delivery *)
  stable : (int * Sim_time.t) list;       (* pid -> earliest stability *)
}

let compare_hop a b =
  match Sim_time.compare a.at b.at with
  | 0 -> (
    match Int.compare a.src b.src with
    | 0 -> Int.compare a.dst b.dst
    | c -> c)
  | c -> c

(* Earliest-at wins; tie on the sorted (at, src, dst) order. *)
let of_log log ~uid =
  let hops = ref [] in
  let marks = ref [] in
  let delivered : (int, Sim_time.t) Hashtbl.t = Hashtbl.create 16 in
  let stable : (int, Sim_time.t) Hashtbl.t = Hashtbl.create 16 in
  let send = ref None in
  let keep tbl pid at =
    match Hashtbl.find_opt tbl pid with
    | Some prev when Sim_time.compare prev at <= 0 -> ()
    | _ -> Hashtbl.replace tbl pid at
  in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Span_send { uid = u; pid; bytes } when u = uid ->
        (match !send with
         | Some _ -> ()
         | None -> send := Some (pid, r.Event.at, bytes))
      | Event.Hop_send { uid = u; pid; dst; kind } when u = uid ->
        hops := { at = r.Event.at; src = pid; dst; kind } :: !hops
      | Event.Hop_suppress { uid = u; pid; dst } when u = uid ->
        marks := (r.Event.at, pid, dst, Suppress) :: !marks
      | Event.Hop_park { uid = u; pid; dst } when u = uid ->
        marks := (r.Event.at, pid, dst, Park) :: !marks
      | Event.Span_delivered { uid = u; pid } when u = uid ->
        keep delivered pid r.Event.at
      | Event.Span_stable { uid = u; pid } when u = uid ->
        keep stable pid r.Event.at
      | _ -> ());
  match !send with
  | None -> None
  | Some (origin, sent_at, bytes) ->
    let assoc tbl =
      Hashtbl.fold (fun pid at acc -> (pid, at) :: acc) tbl []
      |> List.sort compare
    in
    Some
      { uid; origin; sent_at; bytes;
        hops = List.sort compare_hop !hops;
        marks = List.sort compare !marks;
        delivered = assoc delivered;
        stable = assoc stable }

let uids log =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Span_send { uid; _ } ->
        if not (Hashtbl.mem seen uid) then begin
          Hashtbl.add seen uid ();
          order := uid :: !order
        end
      | _ -> ());
  List.sort Int.compare !order

(* ------------------------------------------------------------------------ *)
(* ASCII renderer *)

let pid_name names pid =
  match List.assoc_opt pid names with
  | Some n -> n
  | None -> Printf.sprintf "p%d" pid

let us t = Sim_time.to_us t

let render ?(names = []) (t : t) =
  let buf = Buffer.create 512 in
  (* first hop to each pid wins; everything else is a duplicate copy *)
  let first_reach : (int, hop) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun h ->
      if h.dst <> t.origin && not (Hashtbl.mem first_reach h.dst) then
        Hashtbl.add first_reach h.dst h)
    t.hops;
  let primary h =
    match Hashtbl.find_opt first_reach h.dst with
    | Some h' -> h' == h
    | None -> false
  in
  (* children of [pid]: its hops and suppress/park marks, time-ordered *)
  let items_of pid =
    let hs =
      List.filter_map
        (fun h -> if h.src = pid then Some (h.at, h.dst, `Hop h) else None)
        t.hops
    in
    let ms =
      List.filter_map
        (fun (at, src, dst, what) ->
          if src = pid then Some (at, dst, `Mark what) else None)
        t.marks
    in
    List.sort
      (fun (a, da, _) (b, db, _) ->
        match Sim_time.compare a b with 0 -> Int.compare da db | c -> c)
      (hs @ ms)
  in
  let timing pid =
    let d =
      match List.assoc_opt pid t.delivered with
      | Some at -> Printf.sprintf " delivered @%dus" (us at)
      | None -> " undelivered"
    in
    match List.assoc_opt pid t.stable with
    | Some at -> Printf.sprintf "%s stable @%dus" d (us at)
    | None -> d
  in
  Buffer.add_string buf
    (Printf.sprintf "msg#%d origin %s sent @%dus bytes=%d%s\n" t.uid
       (pid_name names t.origin) (us t.sent_at) t.bytes
       (match List.assoc_opt t.origin t.delivered with
        | Some at -> Printf.sprintf " self-delivered @%dus" (us at)
        | None -> ""));
  let rec walk prefix pid =
    let items = items_of pid in
    let n = List.length items in
    List.iteri
      (fun i (at, dst, item) ->
        let last = i = n - 1 in
        let tee = if last then "`-- " else "|-- " in
        let pad = if last then "    " else "|   " in
        match item with
        | `Hop h when primary h ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s -> %s [%s] @%dus%s\n" prefix tee
               (pid_name names pid) (pid_name names dst)
               (Event.hop_kind_name h.kind) (us at) (timing dst));
          walk (prefix ^ pad) dst
        | `Hop h ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s -> %s [%s] @%dus (duplicate copy)\n" prefix
               tee (pid_name names pid) (pid_name names dst)
               (Event.hop_kind_name h.kind) (us at))
        | `Mark Suppress ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s -x %s suppressed @%dus\n" prefix tee
               (pid_name names pid) (pid_name names dst) (us at))
        | `Mark Park ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s =| %s parked @%dus\n" prefix tee
               (pid_name names pid) (pid_name names dst) (us at)))
      items
  in
  walk "" t.origin;
  Buffer.contents buf

let render_log ?(names = []) log =
  let trees = List.filter_map (fun uid -> of_log log ~uid) (uids log) in
  String.concat "\n" (List.map (render ~names) trees)

(* ------------------------------------------------------------------------ *)
(* Perfetto (chrome-trace) export of hop spans: each copy in flight is an
   "X" slice on the sender's control lane, lasting until the receiver first
   delivered the message (1us when unknown). *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let hops_chrome_trace ?(names = []) log =
  let trees = List.filter_map (fun uid -> of_log log ~uid) (uids log) in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let pids = Hashtbl.create 8 in
  List.iter
    (fun (t : t) ->
      Hashtbl.replace pids t.origin ();
      List.iter
        (fun h ->
          Hashtbl.replace pids h.src ();
          Hashtbl.replace pids h.dst ())
        t.hops)
    trees;
  Hashtbl.fold (fun pid () acc -> pid :: acc) pids []
  |> List.sort Int.compare
  |> List.iter (fun pid ->
         event
           (Printf.sprintf
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
              pid
              (escape (pid_name names pid))));
  List.iter
    (fun (t : t) ->
      List.iter
        (fun h ->
          let ts = us h.at in
          let dur =
            match List.assoc_opt h.dst t.delivered with
            | Some at when Sim_time.compare h.at at < 0 ->
              us (Sim_time.sub at h.at)
            | _ -> 1
          in
          event
            (Printf.sprintf
               "{\"name\":\"hop msg#%d %s\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":0,\"args\":{\"uid\":%d,\"dst\":%d,\"kind\":\"%s\"}}"
               t.uid
               (Event.hop_kind_name h.kind)
               ts dur h.src t.uid h.dst
               (Event.hop_kind_name h.kind)))
        t.hops)
    trees;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b
