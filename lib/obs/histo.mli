(** Bounded-memory log-bucketed latency histogram (HDR-histogram style).

    Values (microseconds, but any non-negative float works) are binned into
    16 linear sub-buckets per power-of-two octave, covering [1, 2^40) with
    one underflow bucket below 1.0 — 641 integer counters in a flat array,
    a few KB regardless of how many samples are added. Quantile estimates
    come back as the midpoint of the selected bucket, so their relative
    error is bounded by half a bucket width: {e at most 3.125%}. Exact
    count, sum, min and max are carried alongside, and [percentile t 0.0] /
    [percentile t 1.0] return the exact extremes.

    Histograms with different sample streams {!merge} by adding counters,
    which is what makes per-node distributions aggregatable into group
    totals without retaining samples (cf. [Stats.Summary], whose reservoir
    keeps an approximation of the raw samples instead). *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Negative values are clamped into the underflow bucket. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty, like [Stats.Summary.mean]. *)

val min : t -> float
val max : t -> float
(** Exact observed extremes; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,1\]]: nearest-rank over the bucket
    counts, returning the matched bucket's midpoint clamped to the exact
    observed [\[min, max\]]. Relative error <= 3.125%. [nan] when empty. *)

val merge : t -> t -> unit
(** [merge acc other] adds [other]'s counters (and count/sum/min/max) into
    [acc]; [other] is unchanged. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)], ascending. *)

val max_relative_error : float
(** The 3.125% quantile error bound (1 / 32). *)
