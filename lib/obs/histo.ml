let sub_buckets = 16  (* per octave *)
let octaves = 40  (* covers [1, 2^40) us ~= 12.7 simulated days *)
let n_buckets = 1 + (octaves * sub_buckets)  (* bucket 0 = values < 1.0 *)
let max_relative_error = 1.0 /. (2.0 *. float_of_int sub_buckets)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make n_buckets 0; count = 0; sum = 0.0; min_v = infinity;
    max_v = neg_infinity }

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let m, e = Float.frexp v in  (* v = m * 2^e, m in [0.5, 1) *)
    if e > octaves then n_buckets - 1
    else 1 + ((e - 1) * sub_buckets) + int_of_float ((m -. 0.5) *. 32.0)
  end

(* inverse of [bucket_of]: the value range binned into bucket [k >= 1] *)
let bounds k =
  let e = 1 + ((k - 1) / sub_buckets) in
  let s = (k - 1) mod sub_buckets in
  ( Float.ldexp (0.5 +. (float_of_int s /. 32.0)) e,
    Float.ldexp (0.5 +. (float_of_int (s + 1) /. 32.0)) e )

let add t v =
  let k = bucket_of v in
  t.counts.(k) <- t.counts.(k) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min t = if t.count = 0 then nan else t.min_v
let max t = if t.count = 0 then nan else t.max_v

let representative t k =
  let mid =
    if k = 0 then 0.5
    else
      let lo, hi = bounds k in
      (lo +. hi) /. 2.0
  in
  Float.min t.max_v (Float.max t.min_v mid)

let percentile t p =
  if t.count = 0 then nan
  else if p <= 0.0 then t.min_v  (* documented exact extremes *)
  else if p >= 1.0 then t.max_v
  else begin
    (* same nearest-rank convention as Stats.Summary.percentile *)
    let rank = int_of_float (Float.round (p *. float_of_int (t.count - 1))) in
    let rank = Stdlib.max 0 (Stdlib.min (t.count - 1) rank) in
    let rec walk k cum =
      let cum = cum + t.counts.(k) in
      if rank < cum || k = n_buckets - 1 then representative t k
      else walk (k + 1) cum
    in
    walk 0 0
  end

let merge acc other =
  for k = 0 to n_buckets - 1 do
    acc.counts.(k) <- acc.counts.(k) + other.counts.(k)
  done;
  acc.count <- acc.count + other.count;
  acc.sum <- acc.sum +. other.sum;
  if other.min_v < acc.min_v then acc.min_v <- other.min_v;
  if other.max_v > acc.max_v then acc.max_v <- other.max_v

let buckets t =
  let acc = ref [] in
  for k = n_buckets - 1 downto 0 do
    if t.counts.(k) > 0 then begin
      let lo, hi = if k = 0 then (0.0, 1.0) else bounds k in
      acc := (lo, hi, t.counts.(k)) :: !acc
    end
  done;
  !acc
