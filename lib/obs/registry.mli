(** Protocol-metrics registry: typed counters, gauges and histograms keyed
    by [(layer, name, labels)].

    Registration happens once per handle (setup time); the returned cell is
    bare mutable state, so hot-path updates are a single store — no
    hashing, no bounds checks, no allocation. A registry created with
    [~enabled:false] returns shared {e scrap} cells instead: updates write
    to a sink that no snapshot ever reads, which keeps the disabled path
    inside the same <2% overhead envelope as a disabled {!Log} (measured
    by the bench [obs_overhead] section).

    One registry belongs to one stack. Under [Engine.Parallel] every stack
    mutates only its own cells, so no synchronization is needed;
    {!snapshot}s from all stacks {!merge} into group totals whose value —
    and {!fingerprint} — is independent of domain count. *)

type t

type counter
type gauge

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool

val null : unit -> t
(** A shared process-wide disabled registry: all handles are scrap cells.
    Lets instrumented modules keep unconditional cell fields when their
    owner attached no registry. *)

(** {2 Registration} — idempotent per key; re-registering the same key with
    a different type raises [Invalid_argument]. Labels are order-insensitive
    (sorted on registration). *)

val counter :
  t -> layer:Event.layer -> name:string -> ?labels:(string * string) list ->
  unit -> counter

val gauge :
  t -> layer:Event.layer -> name:string -> ?labels:(string * string) list ->
  unit -> gauge

val histogram :
  t -> layer:Event.layer -> name:string -> ?labels:(string * string) list ->
  unit -> Histo.t
(** The handle is a plain {!Histo.t}; feed it with [Histo.add]. *)

(** {2 Hot-path updates} — one store each. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {2 Snapshots} *)

type key = private {
  layer : Event.layer;
  name : string;
  labels : (string * string) list;
}

type sample = Counter_v of int | Gauge_v of int | Histo_v of Histo.t

type snapshot = (key * sample) list
(** Sorted by (layer, name, labels); histograms are deep-copied, so a
    snapshot is immutable with respect to further updates. *)

val snapshot : t -> snapshot
(** Empty for a disabled registry. *)

val merge : snapshot -> snapshot -> snapshot
(** Key-wise: counters and gauges add, histograms merge bucket-wise.
    Commutative and associative, so group totals do not depend on stack
    order. *)

val merge_all : snapshot list -> snapshot

val counter_total : snapshot -> layer:Event.layer -> name:string -> int
(** Sum over all label sets of the named counter; 0 when absent. *)

val gauge_total : snapshot -> layer:Event.layer -> name:string -> int

val histo : snapshot -> layer:Event.layer -> name:string -> Histo.t option
(** Merge of all label sets of the named histogram. *)

(** {2 Exporters} *)

val to_prometheus : snapshot -> string
(** Prometheus text format: [catocs_<layer>_<name>] metric names, counters
    suffixed [_total], histograms as summaries (p50/p99/p999 quantile
    samples plus [_sum]/[_count]). *)

val to_json : snapshot -> string
(** Single-line JSON: [{"schema_version":1,"metrics":[...]}]. *)

val fingerprint : snapshot -> string
(** Hex digest over every key, counter/gauge total and histogram bucket —
    equal iff the snapshots are observationally identical. *)
