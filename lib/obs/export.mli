(** Telemetry exporters.

    {!chrome_trace} renders a log in the Chrome trace-event JSON format
    (the ["traceEvents"] array form), loadable in Perfetto / chrome://
    tracing: one track ([pid]) per simulated process, lifecycle spans as
    ["X"] complete events with [transit] / [ordering-wait] /
    [buffered-unstable] child phases nested under each message span, flush
    rounds on the control thread (tid 0), retransmissions as instants, and
    gauge samples as ["C"] counter series. Overlapping message spans on one
    process are spread over per-process lanes (tids) greedily, so every
    span is visible. Timestamps are emitted in microseconds — [Sim_time]'s
    own unit — with no scaling.

    {!jsonl} is the raw feed: one JSON object per line per record, carrying
    the {!Event.event_name} tag, the layer and every scalar field. Both
    emit deterministic output (fixed field order, no hash-order
    dependence), so exports are golden-file testable and diffable across
    runs. *)

val chrome_trace : ?names:(int * string) list -> Log.t -> string
(** [names] maps pids to display names for track labels (unlisted pids show
    as [p<pid>]). *)

val jsonl : Log.t -> string
(** Newline-terminated. Empty string for an empty log. *)
