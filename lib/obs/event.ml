type layer = Transport | Ordering | Stability | View | App

let layer_name = function
  | Transport -> "transport"
  | Ordering -> "ordering"
  | Stability -> "stability"
  | View -> "view"
  | App -> "app"

type gauge =
  | Unstable_msgs
  | Unstable_bytes
  | Queue_depth
  | Blocked_msgs

let gauge_name = function
  | Unstable_msgs -> "unstable_msgs"
  | Unstable_bytes -> "unstable_bytes"
  | Queue_depth -> "queue_depth"
  | Blocked_msgs -> "blocked_msgs"

(* How a copy of a multicast left a node: the origin's initial fanout, a
   PC/hybrid forward after first delivery, a hybrid park-buffer drain, or a
   barrier-gap resend. Together with [Hop_suppress]/[Hop_park] these events
   reconstruct the full dissemination tree of a message from the log. *)
type hop_kind = Origin_copy | Forward_copy | Drain_copy | Resend_copy

let hop_kind_name = function
  | Origin_copy -> "origin"
  | Forward_copy -> "forward"
  | Drain_copy -> "drain"
  | Resend_copy -> "resend"

type event =
  | Span_send of { uid : int; pid : int; bytes : int }
  | Span_recv of { uid : int; pid : int }
  | Span_queued of { uid : int; pid : int }
  | Span_delivered of { uid : int; pid : int }
  | Span_stable of { uid : int; pid : int }
  | View_flush_start of { pid : int; view_id : int }
  | View_flush_end of { pid : int; view_id : int }
  | Retransmit of { pid : int; dst : int; seq : int; attempt : int }
  | Gauge_sample of { pid : int; gauge : gauge; value : int }
  | Hop_send of { uid : int; pid : int; dst : int; kind : hop_kind }
  | Hop_suppress of { uid : int; pid : int; dst : int }
  | Hop_park of { uid : int; pid : int; dst : int }

type record = { at : Sim_time.t; layer : layer; event : event }

let layer_of = function
  | Span_send _ | Span_delivered _ -> App
  | Span_recv _ | Retransmit _ -> Transport
  | Span_queued _ -> Ordering
  | Span_stable _ -> Stability
  | View_flush_start _ | View_flush_end _ -> View
  | Gauge_sample { gauge = Unstable_msgs | Unstable_bytes; _ } -> Stability
  | Gauge_sample { gauge = Queue_depth | Blocked_msgs; _ } -> Ordering
  | Hop_send _ | Hop_suppress _ | Hop_park _ -> Ordering

let event_name = function
  | Span_send _ -> "span_send"
  | Span_recv _ -> "span_recv"
  | Span_queued _ -> "span_queued"
  | Span_delivered _ -> "span_delivered"
  | Span_stable _ -> "span_stable"
  | View_flush_start _ -> "view_flush_start"
  | View_flush_end _ -> "view_flush_end"
  | Retransmit _ -> "retransmit"
  | Gauge_sample _ -> "gauge_sample"
  | Hop_send _ -> "hop_send"
  | Hop_suppress _ -> "hop_suppress"
  | Hop_park _ -> "hop_park"
