type layer = Transport | Ordering | Stability | View | App

let layer_name = function
  | Transport -> "transport"
  | Ordering -> "ordering"
  | Stability -> "stability"
  | View -> "view"
  | App -> "app"

type gauge =
  | Unstable_msgs
  | Unstable_bytes
  | Queue_depth
  | Blocked_msgs

let gauge_name = function
  | Unstable_msgs -> "unstable_msgs"
  | Unstable_bytes -> "unstable_bytes"
  | Queue_depth -> "queue_depth"
  | Blocked_msgs -> "blocked_msgs"

type event =
  | Span_send of { uid : int; pid : int; bytes : int }
  | Span_recv of { uid : int; pid : int }
  | Span_queued of { uid : int; pid : int }
  | Span_delivered of { uid : int; pid : int }
  | Span_stable of { uid : int; pid : int }
  | View_flush_start of { pid : int; view_id : int }
  | View_flush_end of { pid : int; view_id : int }
  | Retransmit of { pid : int; dst : int; seq : int; attempt : int }
  | Gauge_sample of { pid : int; gauge : gauge; value : int }

type record = { at : Sim_time.t; layer : layer; event : event }

let layer_of = function
  | Span_send _ | Span_delivered _ -> App
  | Span_recv _ | Retransmit _ -> Transport
  | Span_queued _ -> Ordering
  | Span_stable _ -> Stability
  | View_flush_start _ | View_flush_end _ -> View
  | Gauge_sample { gauge = Unstable_msgs | Unstable_bytes; _ } -> Stability
  | Gauge_sample { gauge = Queue_depth | Blocked_msgs; _ } -> Ordering

let event_name = function
  | Span_send _ -> "span_send"
  | Span_recv _ -> "span_recv"
  | Span_queued _ -> "span_queued"
  | Span_delivered _ -> "span_delivered"
  | Span_stable _ -> "span_stable"
  | View_flush_start _ -> "view_flush_start"
  | View_flush_end _ -> "view_flush_end"
  | Retransmit _ -> "retransmit"
  | Gauge_sample _ -> "gauge_sample"
