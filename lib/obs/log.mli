(** The telemetry event log: a growable ring buffer of {!Event.record}s.

    Follows the [Sim.Trace] discipline: a log is cheap to carry around and
    free when disabled. Every emitter takes only scalar (immediate)
    arguments and checks {!enabled} before allocating the record, so an
    attached-but-disabled log costs one load and one branch per event — no
    allocation, measured under 2% of end-to-end throughput at n=64 by the
    [bench] overhead section.

    Storage grows by doubling up to [cap] (default 2^20 records); past
    that the ring overwrites the {e oldest} records and counts them in
    {!dropped}, so a runaway run degrades into a bounded recent-history
    window instead of unbounded memory. *)

type t

val create : ?cap:int -> ?enabled:bool -> ?synchronized:bool -> unit -> t
(** [enabled] defaults to [true] (an attached log is normally wanted); pass
    [~enabled:false] to pre-wire telemetry that a config flag turns on
    later. [cap] must be positive. [synchronized] (default [false]) guards
    every push with a mutex so the log may be shared by stacks running on
    different engine domains; cross-pid record order then depends on the
    scheduler, but the record set and all per-pid subsequences remain
    deterministic. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val synchronized : t -> bool
(** [true] when created with [~synchronized:true] (safe to share across
    [Engine.Parallel] domains). *)

(** {2 Emitters} — one per event kind, scalar arguments only. *)

val span_send : t -> at:Sim_time.t -> uid:int -> pid:int -> bytes:int -> unit
val span_recv : t -> at:Sim_time.t -> uid:int -> pid:int -> unit
val span_queued : t -> at:Sim_time.t -> uid:int -> pid:int -> unit
val span_delivered : t -> at:Sim_time.t -> uid:int -> pid:int -> unit
val span_stable : t -> at:Sim_time.t -> uid:int -> pid:int -> unit
val flush_start : t -> at:Sim_time.t -> pid:int -> view_id:int -> unit
val flush_end : t -> at:Sim_time.t -> pid:int -> view_id:int -> unit

val retransmit :
  t -> at:Sim_time.t -> pid:int -> dst:int -> seq:int -> attempt:int -> unit

val gauge : t -> at:Sim_time.t -> pid:int -> Event.gauge -> int -> unit

val hop_send :
  t -> at:Sim_time.t -> uid:int -> pid:int -> dst:int -> Event.hop_kind -> unit

val hop_suppress : t -> at:Sim_time.t -> uid:int -> pid:int -> dst:int -> unit
val hop_park : t -> at:Sim_time.t -> uid:int -> pid:int -> dst:int -> unit

(** {2 Reading} *)

val length : t -> int
(** Records currently held (after any overwriting). *)

val dropped : t -> int
(** Oldest records overwritten because the ring hit [cap]. *)

val iter : t -> (Event.record -> unit) -> unit
(** In emission (chronological) order, oldest surviving record first. *)

val fold : t -> init:'acc -> f:('acc -> Event.record -> 'acc) -> 'acc

val clear : t -> unit
(** Drop all records (capacity and the enabled flag are kept). *)
