(* Runtime watchdogs: threshold rules over the obs log and a metrics
   snapshot.

   Each rule replays the recorded telemetry — gauge ticks, span phase
   boundaries, hop records, registry counters — and emits a structured
   finding when a threshold trips. lib/obs cannot see the analyzer's
   [Finding] type (the dependency points the other way), so findings here
   are a plain record that [bin/analyze_cli] converts into analyzer JSON,
   giving CI a [--fail-on] gate over the same battery. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type finding = {
  rule : string;
  severity : severity;
  summary : string;
  evidence : string list;
}

type config = {
  stall_after_us : int;
      (* a delivered message still unstable this long after delivery (and
         before the log ends) counts as stalled *)
  growth_window : int;
      (* consecutive strictly-rising unstable_msgs gauge ticks to alarm *)
  growth_min_value : int;  (* ...provided the gauge ends at least this high *)
  outlier_factor : float;  (* p999 > factor * p50 is an ordering outlier *)
  outlier_floor_us : float;  (* ...and above this absolute floor *)
  outlier_min_samples : int;
  duplicate_rate : float;
      (* duplicate copies / primary copies above this warns; [infinity]
         (the default) only reports the rate as an info finding, since PC
         full-mesh forwarding is *designed* to flood duplicates *)
}

let default =
  { stall_after_us = 100_000;
    growth_window = 8;
    growth_min_value = 64;
    outlier_factor = 100.0;
    outlier_floor_us = 10_000.0;
    outlier_min_samples = 100;
    duplicate_rate = infinity }

(* --- stability-stall ----------------------------------------------------- *)

let stability_stall cfg log =
  let last_ts = Log.fold log ~init:Sim_time.zero ~f:(fun acc r ->
      if Sim_time.compare acc r.Event.at < 0 then r.Event.at else acc)
  in
  let stalled =
    List.filter
      (fun (s : Span.t) ->
        match (s.Span.delivered_at, s.Span.stable_at) with
        | Some d, None ->
          Sim_time.to_us (Sim_time.sub last_ts d) > cfg.stall_after_us
        | _ -> false)
      (Span.of_log log)
  in
  match stalled with
  | [] -> []
  | _ ->
    let sample =
      List.filteri (fun i _ -> i < 5) stalled
      |> List.map (fun (s : Span.t) ->
             Printf.sprintf "msg#%d at p%d delivered @%dus, never stable"
               s.Span.uid s.Span.pid
               (Sim_time.to_us
                  (match s.Span.delivered_at with
                   | Some d -> d
                   | None -> Sim_time.zero)))
    in
    [ { rule = "stability-stall";
        severity = Warning;
        summary =
          Printf.sprintf
            "%d delivered message(s) still unstable %dus after delivery — \
             gossip or minima propagation has stalled"
            (List.length stalled) cfg.stall_after_us;
        evidence = sample } ]

(* --- unbounded-buffer-growth --------------------------------------------- *)

let buffer_growth cfg log =
  (* per-pid unstable_msgs gauge series, in tick order *)
  let series : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Gauge_sample { pid; gauge = Event.Unstable_msgs; value } ->
        let l =
          match Hashtbl.find_opt series pid with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add series pid l;
            l
        in
        l := value :: !l  (* newest first *)
      | _ -> ());
  let growing =
    Hashtbl.fold
      (fun pid l acc ->
        let newest_first = !l in
        let rec rising n = function
          | a :: (b :: _ as rest) when n > 1 ->
            if a > b then rising (n - 1) rest else false
          | _ :: _ -> n <= 1
          | [] -> false
        in
        match newest_first with
        | final :: _
          when final >= cfg.growth_min_value
               && List.length newest_first >= cfg.growth_window
               && rising cfg.growth_window newest_first ->
          (pid, final) :: acc
        | _ -> acc)
      series []
    |> List.sort compare
  in
  match growing with
  | [] -> []
  | _ ->
    [ { rule = "buffer-growth";
        severity = Warning;
        summary =
          Printf.sprintf
            "unstable-message buffer rising for %d straight tick(s) at %d \
             node(s) — stability is not keeping up with send rate"
            cfg.growth_window (List.length growing);
        evidence =
          List.map
            (fun (pid, final) ->
              Printf.sprintf "p%d ended at %d buffered messages" pid final)
            growing } ]

(* --- ordering-wait p999 outlier ------------------------------------------ *)

let ordering_outlier cfg log =
  let h = Histo.create () in
  List.iter
    (fun (s : Span.t) ->
      match Span.ordering_wait_us s with
      | Some w -> Histo.add h (float_of_int w)
      | None -> ())
    (Span.of_log log);
  if Histo.count h < cfg.outlier_min_samples then []
  else
    let p50 = Histo.percentile h 0.5 in
    let p999 = Histo.percentile h 0.999 in
    if p999 > cfg.outlier_factor *. Float.max p50 1.0
       && p999 > cfg.outlier_floor_us
    then
      [ { rule = "ordering-outlier";
          severity = Warning;
          summary =
            Printf.sprintf
              "ordering-wait p999 %.0fus is %.0fx p50 (%.0fus) over %d \
               samples — a few messages are blocked far behind the rest"
              p999
              (p999 /. Float.max p50 1.0)
              p50 (Histo.count h);
          evidence = [] } ]
    else []

(* --- copy-conservation and duplicate-copy-rate --------------------------- *)

let hop_census log =
  let forwards = ref 0 and drains = ref 0 and resends = ref 0 in
  let origins = ref 0 and suppressed = ref 0 and parked = ref 0 in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Hop_send { kind = Event.Origin_copy; _ } -> incr origins
      | Event.Hop_send { kind = Event.Forward_copy; _ } -> incr forwards
      | Event.Hop_send { kind = Event.Drain_copy; _ } -> incr drains
      | Event.Hop_send { kind = Event.Resend_copy; _ } -> incr resends
      | Event.Hop_suppress _ -> incr suppressed
      | Event.Hop_park _ -> incr parked
      | _ -> ());
  (!origins, !forwards, !drains, !resends, !suppressed, !parked)

(* The registry counters and the hop records are written by the same call
   sites, so on a complete log they must agree exactly. A mismatch means an
   instrumentation path lost an increment (the watchdog the forward-copy
   mutation test convicts with). Skipped when the ring dropped records or
   no snapshot is supplied. *)
let copy_conservation log snapshot =
  match snapshot with
  | None -> []
  | Some _ when Log.dropped log > 0 -> []
  | Some snap ->
    let origins, forwards, drains, resends, suppressed, parked =
      hop_census log
    in
    let checks =
      [ ("origin_copies", origins); ("forward_copies", forwards);
        ("drain_copies", drains); ("resend_copies", resends);
        ("suppressed_copies", suppressed); ("parked_copies", parked) ]
    in
    let broken =
      List.filter_map
        (fun (name, from_log) ->
          let from_registry =
            Registry.counter_total snap ~layer:Event.Ordering ~name
          in
          if from_registry <> from_log then
            Some
              (Printf.sprintf "%s: registry %d vs %d hop record(s) in log"
                 name from_registry from_log)
          else None)
        checks
    in
    if broken = [] then []
    else
      [ { rule = "copy-conservation";
          severity = Error;
          summary =
            Printf.sprintf
              "%d metric counter(s) disagree with the hop records — an \
               instrumentation increment was dropped"
              (List.length broken);
          evidence = broken } ]

let duplicate_copy_rate cfg log =
  (* copies beyond the first to reach each (uid, dst) are duplicates *)
  let primary = ref 0 and duplicate = ref 0 in
  let reached : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let hops = ref [] in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Hop_send { uid; dst; _ } -> hops := (r.Event.at, uid, dst) :: !hops
      | _ -> ());
  List.iter
    (fun (_, uid, dst) ->
      if Hashtbl.mem reached (uid, dst) then incr duplicate
      else begin
        Hashtbl.add reached (uid, dst) ();
        incr primary
      end)
    (List.sort compare (List.rev !hops));
  if !primary = 0 then []
  else
    let rate = float_of_int !duplicate /. float_of_int !primary in
    let severity = if rate > cfg.duplicate_rate then Warning else Info in
    if !duplicate = 0 then []
    else
      [ { rule = "duplicate-copy-rate";
          severity;
          summary =
            Printf.sprintf
              "%d duplicate cop%s on top of %d primary cop%s (rate %.2f) — \
               redundant dissemination traffic%s"
              !duplicate
              (if !duplicate = 1 then "y" else "ies")
              !primary
              (if !primary = 1 then "y" else "ies")
              rate
              (if rate > cfg.duplicate_rate then
                 Printf.sprintf " above the %.2f threshold" cfg.duplicate_rate
               else "");
          evidence = [] } ]

let run ?(config = default) ?snapshot log =
  stability_stall config log
  @ buffer_growth config log
  @ ordering_outlier config log
  @ copy_conservation log snapshot
  @ duplicate_copy_rate config log
