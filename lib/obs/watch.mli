(** Runtime watchdogs over the obs log and metrics registry.

    Four threshold rules, replayed over recorded telemetry:
    - {b stability-stall}: delivered messages still unstable long after
      delivery — gossip/minima propagation has stalled.
    - {b buffer-growth}: the unstable-message gauge rising monotonically
      across consecutive ticks — buffering is unbounded at current rates
      (the paper's Section 5 buffering cost made into an alarm).
    - {b ordering-outlier}: ordering-wait p999 orders of magnitude above
      p50 — a few messages blocked far behind the rest.
    - {b copy-conservation} / {b duplicate-copy-rate}: registry counters
      must agree exactly with the hop records in the log; duplicate
      dissemination copies are reported, and warn above a configurable
      rate.

    Findings are plain records; [bin/analyze_cli watch] converts them into
    analyzer JSON so CI can [--fail-on] them. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type finding = {
  rule : string;
  severity : severity;
  summary : string;
  evidence : string list;
}

type config = {
  stall_after_us : int;
  growth_window : int;
  growth_min_value : int;
  outlier_factor : float;
  outlier_floor_us : float;
  outlier_min_samples : int;
  duplicate_rate : float;
}

val default : config
(** 100ms stall, 8-tick growth window ending >= 64 msgs, p999 > 100x p50
    and > 10ms, duplicate-rate threshold [infinity] (report-only — PC
    full-mesh forwarding floods duplicates by design). *)

val run :
  ?config:config -> ?snapshot:Registry.snapshot -> Log.t -> finding list
(** Evaluate every rule; findings come back in rule order. The
    copy-conservation rule is skipped without a [snapshot] or when the log
    ring dropped records. *)
