let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------------ *)
(* Chrome trace-event JSON *)

let pid_name names pid =
  match List.assoc_opt pid names with
  | Some n -> n
  | None -> Printf.sprintf "p%d" pid

(* Greedy first-fit lane assignment: spans sorted by start time go to the
   first lane whose previous span has ended, so overlapping spans (several
   in-flight messages at one process) render side by side instead of
   shadowing each other. Lane 0 is reserved for control events (flushes,
   retransmit instants). *)
let assign_lanes spans =
  let lanes : (int, Sim_time.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (span : Span.t) ->
      let ends =
        match Hashtbl.find_opt lanes span.Span.pid with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add lanes span.Span.pid l;
          l
      in
      let stop =
        match
          (span.Span.stable_at, span.Span.delivered_at, span.Span.recv_at)
        with
        | Some t, _, _ | None, Some t, _ | None, None, Some t -> t
        | None, None, None -> span.Span.sent_at
      in
      let rec fit i = function
        | [] -> (i, [ stop ])
        | lane_end :: rest ->
          if Sim_time.compare lane_end span.Span.sent_at <= 0 then
            (i, stop :: rest)
          else
            let j, rest' = fit (i + 1) rest in
            (j, lane_end :: rest')
      in
      let lane, ends' = fit 0 !ends in
      ends := ends';
      (span, lane + 1, stop))
    (List.sort
       (fun (a : Span.t) b ->
         match Sim_time.compare a.Span.sent_at b.Span.sent_at with
         | 0 -> Int.compare a.Span.uid b.Span.uid
         | c -> c)
       spans)

let chrome_trace ?(names = []) log =
  let spans = Span.of_log log in
  let flushes = Span.flushes_of_log log in
  let placed = assign_lanes spans in
  let last_ts = Log.fold log ~init:0 ~f:(fun acc r -> max acc r.Event.at) in
  let pids = Hashtbl.create 8 in
  let lane_count = Hashtbl.create 8 in
  let note_pid pid = Hashtbl.replace pids pid () in
  List.iter
    (fun ((span : Span.t), lane, _) ->
      note_pid span.Span.pid;
      note_pid span.Span.origin;
      let prev =
        match Hashtbl.find_opt lane_count span.Span.pid with
        | Some n -> n
        | None -> 0
      in
      if lane > prev then Hashtbl.replace lane_count span.Span.pid lane)
    placed;
  List.iter (fun (f : Span.flush) -> note_pid f.Span.f_pid) flushes;
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Retransmit { pid; _ } | Event.Gauge_sample { pid; _ } ->
        note_pid pid
      | _ -> ());
  let b = Buffer.create 4096 in
  let first = ref true in
  let event line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  (* metadata: one named track per process, named lanes within it *)
  let sorted_pids =
    Hashtbl.fold (fun pid () acc -> pid :: acc) pids [] |> List.sort Int.compare
  in
  List.iter
    (fun pid ->
      event
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (escape (pid_name names pid)));
      event
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"control\"}}"
           pid);
      let lanes =
        match Hashtbl.find_opt lane_count pid with Some n -> n | None -> 0
      in
      for lane = 1 to lanes do
        event
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"lifecycle-%d\"}}"
             pid lane lane)
      done)
    sorted_pids;
  (* message lifecycle spans with nested phase children *)
  List.iter
    (fun ((span : Span.t), lane, stop) ->
      let ts = Sim_time.to_us span.Span.sent_at in
      let dur = Sim_time.to_us (Sim_time.sub stop span.Span.sent_at) in
      let opt_arg name = function
        | Some v -> Printf.sprintf ",\"%s\":%d" name v
        | None -> ""
      in
      event
        (Printf.sprintf
           "{\"name\":\"msg#%d\",\"cat\":\"lifecycle\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"uid\":%d,\"origin\":%d,\"bytes\":%d%s%s%s}}"
           span.Span.uid ts dur span.Span.pid lane span.Span.uid
           span.Span.origin span.Span.bytes
           (opt_arg "transit_us" (Span.transit_us span))
           (opt_arg "ordering_wait_us" (Span.ordering_wait_us span))
           (opt_arg "stability_lag_us" (Span.stability_lag_us span)));
      let phase name start stop =
        event
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"uid\":%d}}"
             name (Sim_time.to_us start)
             (Sim_time.to_us (Sim_time.sub stop start))
             span.Span.pid lane span.Span.uid)
      in
      (match span.Span.recv_at with
       | Some recv ->
         phase "transit" span.Span.sent_at recv;
         (match span.Span.delivered_at with
          | Some delivered -> phase "ordering-wait" recv delivered
          | None -> ())
       | None -> ());
      (match (span.Span.delivered_at, span.Span.stable_at) with
       | Some delivered, Some stable ->
         phase "buffered-unstable" delivered stable
       | _ -> ()))
    placed;
  (* flush rounds on each process's control lane *)
  List.iter
    (fun (f : Span.flush) ->
      let stop = match f.Span.ended_at with Some t -> t | None -> last_ts in
      event
        (Printf.sprintf
           "{\"name\":\"flush v%d\",\"cat\":\"view\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":0,\"args\":{\"view_id\":%d%s}}"
           f.Span.f_view_id
           (Sim_time.to_us f.Span.started_at)
           (Sim_time.to_us (Sim_time.sub stop f.Span.started_at))
           f.Span.f_pid f.Span.f_view_id
           (match f.Span.ended_at with
            | Some _ -> ""
            | None -> ",\"unfinished\":true")))
    flushes;
  (* instants and counter series straight off the raw records *)
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Retransmit { pid; dst; seq; attempt } ->
        event
          (Printf.sprintf
             "{\"name\":\"retransmit\",\"cat\":\"transport\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":0,\"s\":\"t\",\"args\":{\"dst\":%d,\"seq\":%d,\"attempt\":%d}}"
             (Sim_time.to_us r.Event.at) pid dst seq attempt)
      | Event.Gauge_sample { pid; gauge; value } ->
        event
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"gauge\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{\"value\":%d}}"
             (Event.gauge_name gauge)
             (Sim_time.to_us r.Event.at) pid value)
      | _ -> ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------------ *)
(* JSONL *)

let jsonl log =
  let b = Buffer.create 4096 in
  Log.iter log (fun r ->
      let at = Sim_time.to_us r.Event.at in
      let layer = Event.layer_name r.Event.layer in
      let name = Event.event_name r.Event.event in
      (match r.Event.event with
       | Event.Span_send { uid; pid; bytes } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"uid\":%d,\"pid\":%d,\"bytes\":%d}"
           at layer name uid pid bytes
       | Event.Span_recv { uid; pid }
       | Event.Span_queued { uid; pid }
       | Event.Span_delivered { uid; pid }
       | Event.Span_stable { uid; pid } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"uid\":%d,\"pid\":%d}"
           at layer name uid pid
       | Event.View_flush_start { pid; view_id }
       | Event.View_flush_end { pid; view_id } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"pid\":%d,\"view_id\":%d}"
           at layer name pid view_id
       | Event.Retransmit { pid; dst; seq; attempt } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"pid\":%d,\"dst\":%d,\"seq\":%d,\"attempt\":%d}"
           at layer name pid dst seq attempt
       | Event.Gauge_sample { pid; gauge; value } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"pid\":%d,\"gauge\":\"%s\",\"value\":%d}"
           at layer name pid (Event.gauge_name gauge) value
       | Event.Hop_send { uid; pid; dst; kind } ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"uid\":%d,\"pid\":%d,\"dst\":%d,\"kind\":\"%s\"}"
           at layer name uid pid dst (Event.hop_kind_name kind)
       | Event.Hop_suppress { uid; pid; dst } | Event.Hop_park { uid; pid; dst }
         ->
         Printf.bprintf b
           "{\"at\":%d,\"layer\":\"%s\",\"event\":\"%s\",\"uid\":%d,\"pid\":%d,\"dst\":%d}"
           at layer name uid pid dst);
      Buffer.add_char b '\n');
  Buffer.contents b
