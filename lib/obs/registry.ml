(* Protocol-metrics registry: typed counter/gauge/histogram handles keyed by
   (layer, name, labels).

   Registration returns a bare mutable cell, so the hot path is one store
   with no hashing or branching. A disabled registry hands out *scrap*
   cells that are never entered in the table: increments still cost one
   store (cheaper than a branch would be), snapshots come back empty, and
   nothing registered while disabled is retained — the same
   attached-but-off discipline as [Log].

   Snapshots are sorted by (layer, name, labels) and merge by key —
   counters and gauges add, histograms merge bucket-wise — so per-stack
   registries aggregate into group totals whose value is independent of
   stack iteration order or engine domain count. *)

type key = {
  layer : Event.layer;
  name : string;
  labels : (string * string) list;  (* kept sorted by label key *)
}

type counter = { mutable n : int }
type gauge = { mutable g : int }

type cell = C of counter | G of gauge | H of Histo.t

type t = {
  enabled : bool;
  cells : (key, cell) Hashtbl.t;
  scrap_counter : counter;
  scrap_gauge : gauge;
  scrap_histo : Histo.t;
}

let create ?(enabled = true) () =
  { enabled;
    cells = Hashtbl.create 64;
    scrap_counter = { n = 0 };
    scrap_gauge = { g = 0 };
    scrap_histo = Histo.create () }

(* One process-wide disabled instance for callers whose owner attached no
   registry: every handle it returns is scrap, so instrumented modules can
   hold plain cells with no option in sight. Scrap stores may race across
   engine domains; the garbage lands in cells nothing ever reads. *)
let null_instance = create ~enabled:false ()
let null () = null_instance

let enabled t = t.enabled

let key ~layer ~name ~labels =
  { layer; name;
    labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels }

let register t k make wrong =
  match Hashtbl.find_opt t.cells k with
  | Some cell -> (
    match wrong cell with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s/%s registered with two types"
           (Event.layer_name k.layer) k.name))
  | None ->
    let v, cell = make () in
    Hashtbl.add t.cells k cell;
    v

let counter t ~layer ~name ?(labels = []) () =
  if not t.enabled then t.scrap_counter
  else
    register t (key ~layer ~name ~labels)
      (fun () ->
        let c = { n = 0 } in
        (c, C c))
      (function C c -> Some c | G _ | H _ -> None)

let gauge t ~layer ~name ?(labels = []) () =
  if not t.enabled then t.scrap_gauge
  else
    register t (key ~layer ~name ~labels)
      (fun () ->
        let g = { g = 0 } in
        (g, G g))
      (function G g -> Some g | C _ | H _ -> None)

let histogram t ~layer ~name ?(labels = []) () =
  if not t.enabled then t.scrap_histo
  else
    register t (key ~layer ~name ~labels)
      (fun () ->
        let h = Histo.create () in
        (h, H h))
      (function H h -> Some h | C _ | G _ -> None)

let incr c = c.n <- c.n + 1
let add c by = c.n <- c.n + by
let value c = c.n
let set g v = g.g <- v
let gauge_value g = g.g

(* ------------------------------------------------------------------------ *)
(* Snapshots *)

type sample = Counter_v of int | Gauge_v of int | Histo_v of Histo.t

type snapshot = (key * sample) list

let compare_key a b =
  let c =
    String.compare (Event.layer_name a.layer) (Event.layer_name b.layer)
  in
  if c <> 0 then c
  else
    let c = String.compare a.name b.name in
    if c <> 0 then c else compare a.labels b.labels

let copy_histo h =
  let c = Histo.create () in
  Histo.merge c h;
  c

let snapshot t =
  Hashtbl.fold
    (fun k cell acc ->
      let sample =
        match cell with
        | C c -> Counter_v c.n
        | G g -> Gauge_v g.g
        | H h -> Histo_v (copy_histo h)
      in
      (k, sample) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let merge_sample a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> Counter_v (x + y)
  | Gauge_v x, Gauge_v y -> Gauge_v (x + y)
  | Histo_v x, Histo_v y ->
    let h = copy_histo x in
    Histo.merge h y;
    Histo_v h
  | _ -> invalid_arg "Obs.Registry.merge: same key, different sample types"

(* both inputs sorted by key, so a list merge keeps the result sorted *)
let merge (a : snapshot) (b : snapshot) : snapshot =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = compare_key ka kb in
      if c < 0 then go ta b ((ka, va) :: acc)
      else if c > 0 then go a tb ((kb, vb) :: acc)
      else go ta tb ((ka, merge_sample va vb) :: acc)
  in
  go a b []

let merge_all = function [] -> [] | s :: rest -> List.fold_left merge s rest

let find snap ~layer ~name =
  List.filter (fun (k, _) -> k.layer = layer && k.name = name) snap

let counter_total snap ~layer ~name =
  List.fold_left
    (fun acc (_, s) -> match s with Counter_v n -> acc + n | _ -> acc)
    0
    (find snap ~layer ~name)

let gauge_total snap ~layer ~name =
  List.fold_left
    (fun acc (_, s) -> match s with Gauge_v n -> acc + n | _ -> acc)
    0
    (find snap ~layer ~name)

let histo snap ~layer ~name =
  match
    List.filter_map
      (fun (_, s) -> match s with Histo_v h -> Some h | _ -> None)
      (find snap ~layer ~name)
  with
  | [] -> None
  | hs ->
    let acc = Histo.create () in
    List.iter (Histo.merge acc) hs;
    Some acc

(* ------------------------------------------------------------------------ *)
(* Exporters *)

let quantiles = [ (0.5, "0.5"); (0.99, "0.99"); (0.999, "0.999") ]

(* Prometheus text format: metric names [catocs_<layer>_<name>], counters
   with a [_total] suffix, histograms rendered as summaries (quantile
   labels plus _count/_sum). *)
let to_prometheus (snap : snapshot) =
  let buf = Buffer.create 1024 in
  let base k = Printf.sprintf "catocs_%s_%s" (Event.layer_name k.layer) k.name in
  let label_str extra k =
    match extra @ k.labels with
    | [] -> ""
    | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (lk, lv) -> Printf.sprintf "%s=%S" lk lv) kvs)
      ^ "}"
  in
  let typed = Hashtbl.create 16 in
  let type_line k kind =
    let b = base k in
    if not (Hashtbl.mem typed b) then begin
      Hashtbl.add typed b ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" b kind)
    end
  in
  List.iter
    (fun (k, sample) ->
      match sample with
      | Counter_v n ->
        type_line { k with name = k.name ^ "_total" } "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s_total%s %d\n" (base k) (label_str [] k) n)
      | Gauge_v n ->
        type_line k "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" (base k) (label_str [] k) n)
      | Histo_v h ->
        type_line k "summary";
        List.iter
          (fun (q, qs) ->
            let v = if Histo.count h = 0 then 0.0 else Histo.percentile h q in
            Buffer.add_string buf
              (Printf.sprintf "%s%s %.6g\n" (base k)
                 (label_str [ ("quantile", qs) ] k)
                 v))
          quantiles;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %.6g\n" (base k) (label_str [] k)
             (Histo.sum h));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" (base k) (label_str [] k)
             (Histo.count h)))
    snap;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (snap : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema_version\":1,\"metrics\":[";
  List.iteri
    (fun i (k, sample) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"layer\":\"%s\",\"name\":\"%s\",\"labels\":{%s},"
           (Event.layer_name k.layer) (json_escape k.name)
           (String.concat ","
              (List.map
                 (fun (lk, lv) ->
                   Printf.sprintf "\"%s\":\"%s\"" (json_escape lk)
                     (json_escape lv))
                 k.labels)));
      (match sample with
       | Counter_v n ->
         Buffer.add_string buf
           (Printf.sprintf "\"type\":\"counter\",\"value\":%d}" n)
       | Gauge_v n ->
         Buffer.add_string buf
           (Printf.sprintf "\"type\":\"gauge\",\"value\":%d}" n)
       | Histo_v h ->
         let q p = if Histo.count h = 0 then 0.0 else Histo.percentile h p in
         Buffer.add_string buf
           (Printf.sprintf
              "\"type\":\"histogram\",\"count\":%d,\"sum\":%.6g,\"p50\":%.6g,\"p99\":%.6g,\"p999\":%.6g}"
              (Histo.count h) (Histo.sum h) (q 0.5) (q 0.99) (q 0.999))))
    snap;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Snapshot identity for determinism tests: histogram buckets are included,
   so two fingerprints agree iff counter/gauge totals and full latency
   distributions agree. *)
let fingerprint (snap : snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, sample) ->
      Buffer.add_string buf (Event.layer_name k.layer);
      Buffer.add_char buf '/';
      Buffer.add_string buf k.name;
      List.iter
        (fun (lk, lv) -> Buffer.add_string buf (Printf.sprintf "|%s=%s" lk lv))
        k.labels;
      (match sample with
       | Counter_v n -> Buffer.add_string buf (Printf.sprintf "=C%d" n)
       | Gauge_v n -> Buffer.add_string buf (Printf.sprintf "=G%d" n)
       | Histo_v h ->
         Buffer.add_string buf (Printf.sprintf "=H%d:%.6g" (Histo.count h)
           (Histo.sum h));
         List.iter
           (fun (lo, _, n) ->
             Buffer.add_string buf (Printf.sprintf ";%.6g*%d" lo n))
           (Histo.buckets h));
      Buffer.add_char buf '\n')
    snap;
  Digest.to_hex (Digest.string (Buffer.contents buf))
