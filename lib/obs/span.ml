type t = {
  uid : int;
  origin : int;
  pid : int;
  bytes : int;
  sent_at : Sim_time.t;
  recv_at : Sim_time.t option;
  queued_at : Sim_time.t option;
  delivered_at : Sim_time.t option;
  stable_at : Sim_time.t option;
}

let delta_us a b = Sim_time.to_us (Sim_time.sub b a)

let transit_us t =
  Option.map (fun recv -> delta_us t.sent_at recv) t.recv_at

let ordering_wait_us t =
  match (t.recv_at, t.delivered_at) with
  | Some recv, Some delivered -> Some (delta_us recv delivered)
  | _ -> None

let end_to_end_us t =
  Option.map (fun delivered -> delta_us t.sent_at delivered) t.delivered_at

let stability_lag_us t =
  match (t.delivered_at, t.stable_at) with
  | Some delivered, Some stable -> Some (delta_us delivered stable)
  | _ -> None

(* mutable cell per (uid, pid) during assembly *)
type cell = {
  mutable c_recv : Sim_time.t option;
  mutable c_queued : Sim_time.t option;
  mutable c_delivered : Sim_time.t option;
  mutable c_stable : Sim_time.t option;
}

let of_log log =
  let sends : (int, int * Sim_time.t * int) Hashtbl.t = Hashtbl.create 256 in
  (* (uid, pid) -> cell *)
  let cells : (int * int, cell) Hashtbl.t = Hashtbl.create 256 in
  let cell uid pid =
    match Hashtbl.find_opt cells (uid, pid) with
    | Some c -> c
    | None ->
      let c =
        { c_recv = None; c_queued = None; c_delivered = None; c_stable = None }
      in
      Hashtbl.add cells (uid, pid) c;
      c
  in
  let keep earliest at =
    match earliest with Some _ -> earliest | None -> Some at
  in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.Span_send { uid; pid; bytes } ->
        if not (Hashtbl.mem sends uid) then
          Hashtbl.add sends uid (pid, r.Event.at, bytes)
      | Event.Span_recv { uid; pid } ->
        let c = cell uid pid in
        c.c_recv <- keep c.c_recv r.Event.at
      | Event.Span_queued { uid; pid } ->
        let c = cell uid pid in
        c.c_queued <- keep c.c_queued r.Event.at
      | Event.Span_delivered { uid; pid } ->
        let c = cell uid pid in
        c.c_delivered <- keep c.c_delivered r.Event.at
      | Event.Span_stable { uid; pid } ->
        let c = cell uid pid in
        c.c_stable <- keep c.c_stable r.Event.at
      | Event.View_flush_start _ | Event.View_flush_end _ | Event.Retransmit _
      | Event.Gauge_sample _ | Event.Hop_send _ | Event.Hop_suppress _
      | Event.Hop_park _ -> ());
  Hashtbl.fold
    (fun (uid, pid) c acc ->
      match Hashtbl.find_opt sends uid with
      | None -> acc  (* send fell off the ring: incomplete, drop *)
      | Some (origin, sent_at, bytes) ->
        { uid; origin; pid; bytes; sent_at; recv_at = c.c_recv;
          queued_at = c.c_queued; delivered_at = c.c_delivered;
          stable_at = c.c_stable }
        :: acc)
    cells []
  |> List.sort (fun a b ->
         match Int.compare a.uid b.uid with
         | 0 -> Int.compare a.pid b.pid
         | c -> c)

type flush = {
  f_pid : int;
  f_view_id : int;
  started_at : Sim_time.t;
  ended_at : Sim_time.t option;
}

let flushes_of_log log =
  (* (pid, view_id) -> open start, matched in order *)
  let open_rounds : (int * int, Sim_time.t) Hashtbl.t = Hashtbl.create 16 in
  let done_rev = ref [] in
  Log.iter log (fun r ->
      match r.Event.event with
      | Event.View_flush_start { pid; view_id } ->
        if not (Hashtbl.mem open_rounds (pid, view_id)) then
          Hashtbl.add open_rounds (pid, view_id) r.Event.at
      | Event.View_flush_end { pid; view_id } ->
        (match Hashtbl.find_opt open_rounds (pid, view_id) with
         | Some started_at ->
           Hashtbl.remove open_rounds (pid, view_id);
           done_rev :=
             { f_pid = pid; f_view_id = view_id; started_at;
               ended_at = Some r.Event.at }
             :: !done_rev
         | None -> ())  (* end without a retained start: drop *)
      | Event.Span_send _ | Event.Span_recv _ | Event.Span_queued _
      | Event.Span_delivered _ | Event.Span_stable _ | Event.Retransmit _
      | Event.Gauge_sample _ | Event.Hop_send _ | Event.Hop_suppress _
      | Event.Hop_park _ -> ());
  let still_open =
    Hashtbl.fold
      (fun (pid, view_id) started_at acc ->
        { f_pid = pid; f_view_id = view_id; started_at; ended_at = None } :: acc)
      open_rounds []
  in
  List.sort
    (fun a b ->
      match Sim_time.compare a.started_at b.started_at with
      | 0 ->
        (match Int.compare a.f_pid b.f_pid with
         | 0 -> Int.compare a.f_view_id b.f_view_id
         | c -> c)
      | c -> c)
    (still_open @ List.rev !done_rev)
