(** Per-message lifecycle spans assembled from a telemetry log.

    One span per (message uid, receiving process): the five lifecycle
    timestamps of that copy. The phase durations partition end-to-end
    latency {e exactly} (an invariant qcheck-tested in [test/test_obs.ml]):

    {v
    sent_at ----transit----> recv_at ----ordering_wait----> delivered_at
    transit_us + ordering_wait_us = end_to_end_us
    v}

    [recv_at] is the copy's arrival into the ordering layer; the origin's
    own loopback copy "arrives" at its send instant, so its transit is 0.
    [queued_at] is set only for copies that had to park in an ordering
    queue; [stable_at] only once the local stability tracker released the
    message. Missing timestamps (message still in flight / queued / unstable
    when the run ended) leave the corresponding option [None]. *)

type t = {
  uid : int;
  origin : int;  (** sending pid *)
  pid : int;  (** receiving pid (this copy's process) *)
  bytes : int;  (** payload bytes, from the send event *)
  sent_at : Sim_time.t;
  recv_at : Sim_time.t option;
  queued_at : Sim_time.t option;
  delivered_at : Sim_time.t option;
  stable_at : Sim_time.t option;
}

val transit_us : t -> int option  (** send -> arrival *)

val ordering_wait_us : t -> int option  (** arrival -> delivery *)

val end_to_end_us : t -> int option  (** send -> delivery *)

val stability_lag_us : t -> int option  (** delivery -> local stability *)

val of_log : Log.t -> t list
(** All spans, sorted by (uid, pid). Lifecycle events whose uid was never
    sent within the log's retained window (the ring overwrote the send) are
    dropped; duplicate events for one (uid, pid) keep the earliest. *)

(** A flush round observed at one process. *)
type flush = {
  f_pid : int;
  f_view_id : int;
  started_at : Sim_time.t;
  ended_at : Sim_time.t option;  (** [None]: still flushing at log end *)
}

val flushes_of_log : Log.t -> flush list
(** Start/end pairs matched per (pid, view_id) in order, sorted by
    (started_at, pid, view_id). *)
