type t = {
  mutable enabled : bool;
  cap : int;
  mutable buf : Event.record array;
  mutable start : int;  (* index of the oldest record once the ring wraps *)
  mutable len : int;
  mutable dropped : int;
  lock : Mutex.t option;  (* Some _ when shared across engine domains *)
}

let dummy =
  { Event.at = Sim_time.zero; layer = Event.App;
    event = Event.Gauge_sample { pid = -1; gauge = Event.Queue_depth; value = 0 } }

let create ?(cap = 1 lsl 20) ?(enabled = true) ?(synchronized = false) () =
  if cap <= 0 then invalid_arg "Obs.Log.create: cap must be positive";
  { enabled; cap; buf = Array.make (min cap 1024) dummy; start = 0; len = 0;
    dropped = 0;
    lock = (if synchronized then Some (Mutex.create ()) else None) }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let synchronized t = t.lock <> None
let length t = t.len
let dropped t = t.dropped

(* [start] stays 0 until the first overwrite, so growth never has to unwrap
   a rotated ring: while there is room to grow we are still appending
   linearly. *)
let push_unlocked t at event =
  let n = Array.length t.buf in
  if t.len < n then begin
    t.buf.((t.start + t.len) mod n) <-
      { Event.at; layer = Event.layer_of event; event };
    t.len <- t.len + 1
  end
  else if n < t.cap then begin
    let buf = Array.make (min t.cap (2 * n)) dummy in
    Array.blit t.buf 0 buf 0 n;
    t.buf <- buf;
    buf.(t.len) <- { Event.at; layer = Event.layer_of event; event };
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- { Event.at; layer = Event.layer_of event; event };
    t.start <- (t.start + 1) mod n;
    t.dropped <- t.dropped + 1
  end

(* A [synchronized] log serializes pushes so stacks running on different
   engine domains can share one log. Record *order* across pids is then
   scheduler-dependent, but the record *set* (and every per-pid subsequence)
   stays deterministic — consumers that sort, like [Trace_tree], produce
   byte-identical output at every domain count. *)
let push t at event =
  match t.lock with
  | None -> push_unlocked t at event
  | Some m ->
    Mutex.lock m;
    push_unlocked t at event;
    Mutex.unlock m

let span_send t ~at ~uid ~pid ~bytes =
  if t.enabled then push t at (Event.Span_send { uid; pid; bytes })

let span_recv t ~at ~uid ~pid =
  if t.enabled then push t at (Event.Span_recv { uid; pid })

let span_queued t ~at ~uid ~pid =
  if t.enabled then push t at (Event.Span_queued { uid; pid })

let span_delivered t ~at ~uid ~pid =
  if t.enabled then push t at (Event.Span_delivered { uid; pid })

let span_stable t ~at ~uid ~pid =
  if t.enabled then push t at (Event.Span_stable { uid; pid })

let flush_start t ~at ~pid ~view_id =
  if t.enabled then push t at (Event.View_flush_start { pid; view_id })

let flush_end t ~at ~pid ~view_id =
  if t.enabled then push t at (Event.View_flush_end { pid; view_id })

let retransmit t ~at ~pid ~dst ~seq ~attempt =
  if t.enabled then push t at (Event.Retransmit { pid; dst; seq; attempt })

let gauge t ~at ~pid g value =
  if t.enabled then push t at (Event.Gauge_sample { pid; gauge = g; value })

let hop_send t ~at ~uid ~pid ~dst kind =
  if t.enabled then push t at (Event.Hop_send { uid; pid; dst; kind })

let hop_suppress t ~at ~uid ~pid ~dst =
  if t.enabled then push t at (Event.Hop_suppress { uid; pid; dst })

let hop_park t ~at ~uid ~pid ~dst =
  if t.enabled then push t at (Event.Hop_park { uid; pid; dst })

let iter t f =
  let n = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod n)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
