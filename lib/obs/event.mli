(** Typed telemetry events.

    Every record pins one protocol-level fact to a simulated instant: a
    message crossing a lifecycle boundary (sent, arrived, queued, delivered,
    stable), a view-change flush starting or ending, a transport
    retransmission, or a periodic gauge sample. Records are what {!Log}
    stores and what the {!Span} assembler and the {!Export} writers consume;
    the detectors in [lib/analyze] ingest them directly ([Exec.of_log])
    instead of string-parsing [Sim.Trace] labels. *)

(** Which part of the stack emitted the event. *)
type layer = Transport | Ordering | Stability | View | App

val layer_name : layer -> string

(** Periodically sampled per-node occupancy gauges (the quantities
    Section 5's buffering argument is about). *)
type gauge =
  | Unstable_msgs  (** stability buffer, messages *)
  | Unstable_bytes  (** stability buffer, bytes *)
  | Queue_depth  (** causal/FIFO delivery queue occupancy *)
  | Blocked_msgs  (** everything blocked: delivery + total-order queues *)

val gauge_name : gauge -> string

(** How a copy of a multicast left a node: the origin's initial fanout, a
    PC/hybrid forward after first delivery, a hybrid park-buffer drain, or
    a barrier-gap resend. *)
type hop_kind = Origin_copy | Forward_copy | Drain_copy | Resend_copy

val hop_kind_name : hop_kind -> string

type event =
  | Span_send of { uid : int; pid : int; bytes : int }
      (** multicast stamped at its origin; [bytes] is the payload size *)
  | Span_recv of { uid : int; pid : int }
      (** copy arrived at [pid] and entered the ordering layer (the origin's
          own loopback copy arrives at its send instant) *)
  | Span_queued of { uid : int; pid : int }
      (** copy parked in an ordering queue (delivery condition or total
          order not yet satisfied); absent for immediately deliverable
          copies *)
  | Span_delivered of { uid : int; pid : int }
      (** handed to the application callback *)
  | Span_stable of { uid : int; pid : int }
      (** [pid]'s stability tracker proved the message received everywhere
          and dropped it from the unstable buffer *)
  | View_flush_start of { pid : int; view_id : int }
      (** [pid] entered the flush round for [view_id]: sends suppressed *)
  | View_flush_end of { pid : int; view_id : int }
      (** the round ended at [pid]: the view was installed, or the round
          was abandoned for a later one *)
  | Retransmit of { pid : int; dst : int; seq : int; attempt : int }
      (** reliable transport resent channel segment [seq] to [dst] *)
  | Gauge_sample of { pid : int; gauge : gauge; value : int }
  | Hop_send of { uid : int; pid : int; dst : int; kind : hop_kind }
      (** [pid] put a copy of multicast [uid] on the wire towards [dst];
          the full set of these records is the dissemination tree
          {!Trace_tree} reconstructs *)
  | Hop_suppress of { uid : int; pid : int; dst : int }
      (** hybrid buffering proved [dst] already has [uid] and sent nothing *)
  | Hop_park of { uid : int; pid : int; dst : int }
      (** copy for [dst] parked (link not yet open / barrier pending); a
          later [Hop_send] with [Drain_copy] is its release *)

type record = { at : Sim_time.t; layer : layer; event : event }

val layer_of : event -> layer
(** The fixed emitting layer of each event kind (gauges report the layer
    that owns the sampled quantity). *)

val event_name : event -> string
(** Stable snake_case tag, used by the JSONL exporter and its tests. *)
