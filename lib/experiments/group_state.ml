module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Group = Repro_catocs.Group
module Endpoint = Repro_catocs.Endpoint
module Metrics = Repro_catocs.Metrics

type point = {
  layout : string;
  group_count : int;
  control_messages : int;
  comm_state_bytes_per_process : int;
  misordered : int;
  messages : int;
}

type nmsg = Inquiry of int | Response of int

(* [groups_for readers inquiries per_inquiry]: run the inquiry/response
   workload with either one shared group or one group per inquiry. Every
   reader is a member of every group (the paper's hypothetical), sharing a
   single endpoint per process. *)
let measure ~seed ~readers ~inquiries ~per_inquiry =
  let net = Net.create ~latency:(Net.Uniform (500, 8_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering = Config.Causal } in
  let pids =
    Array.init readers (fun i ->
        Engine.spawn engine ~name:(Printf.sprintf "r%d" i) (fun _ _ -> ()))
  in
  let endpoints =
    Array.map
      (fun pid -> Endpoint.create ~engine ~self:pid ~mode:config.Config.transport ())
      pids
  in
  let group_count = if per_inquiry then inquiries else 1 in
  let delivered_inquiries =
    Array.init readers (fun _ -> Hashtbl.create 64)
  in
  let misordered = ref 0 in
  (* stacks.(g).(i): reader i's stack in group g *)
  let stacks =
    Array.init group_count (fun _ ->
        let view = Group.make_view ~view_id:0 (Array.to_list pids) in
        let shared = Stack.make_shared config in
        Array.mapi
          (fun i pid ->
            Stack.create ~endpoint:endpoints.(i) ~engine ~shared ~config ~view
              ~self:pid ~callbacks:Stack.null_callbacks ())
          pids)
  in
  (* responders: reader (k+1) answers inquiry k upon delivery, in the same
     group the inquiry used *)
  Array.iteri
    (fun g group_stacks ->
      Array.iteri
        (fun i stack ->
          Stack.set_callbacks stack
            { Stack.null_callbacks with
              Stack.deliver =
                (fun ~sender:_ msg ->
                  match msg with
                  | Inquiry k ->
                    Hashtbl.replace delivered_inquiries.(i) k ();
                    if (k + 1) mod Array.length group_stacks = i then
                      Stack.multicast stack (Response k)
                  | Response k ->
                    if not (Hashtbl.mem delivered_inquiries.(i) k) then
                      incr misordered) })
        group_stacks;
      ignore g)
    stacks;
  for k = 0 to inquiries - 1 do
    let g = if per_inquiry then k else 0 in
    let poster = k mod readers in
    Engine.at engine (Sim_time.add (Sim_time.ms 5) (Sim_time.ms (k * 4)))
      (fun () -> Stack.multicast stacks.(g).(poster) (Inquiry k))
  done;
  Engine.run
    ~until:(Sim_time.add (Sim_time.ms (inquiries * 4)) (Sim_time.ms 500))
    engine;
  let control = ref 0 in
  Array.iter
    (Array.iter (fun stack ->
         control := !control + (Stack.metrics stack).Metrics.control_messages))
    stacks;
  (* per-process communication state: a vector clock (4N) plus a stability
     matrix (4N^2) per membership *)
  let per_membership = (4 * readers) + (4 * readers * readers) in
  { layout = (if per_inquiry then "group per inquiry" else "one group");
    group_count;
    control_messages = !control;
    comm_state_bytes_per_process = group_count * per_membership;
    misordered = !misordered;
    messages = Engine.messages_sent engine }

let sweep ?(readers = 6) ?(inquiries = [ 20; 80 ]) ?(seed = 91L) () =
  List.concat_map
    (fun n ->
      [ measure ~seed ~readers ~inquiries:n ~per_inquiry:false;
        measure ~seed ~readers ~inquiries:n ~per_inquiry:true ])
    inquiries

let table points =
  let rows =
    List.map
      (fun p ->
        [ p.layout;
          Table.cell_int p.group_count;
          Table.cell_int p.control_messages;
          Table.cell_int p.comm_state_bytes_per_process;
          Table.cell_int p.misordered;
          Table.cell_int p.messages ])
      points
  in
  Table.make ~id:"group-state"
    ~title:"netnews with a causal group per inquiry: communication-layer state"
    ~paper_ref:"Section 4.1 (the scale objection)"
    ~columns:
      [ "layout"; "groups"; "control msgs"; "comm state B/process";
        "misordered"; "messages" ]
    ~notes:
      [ "both layouts order responses after inquiries (misordered = 0)";
        "per-inquiry groups: protocol state and gossip grow with the number of inquiries";
        "the state-level fix (References field) needs none of this - see the netnews experiment" ]
    rows

let run () = table (sweep ())
