(** The experiment registry: every table/figure of the reproduction, indexed
    by the ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;
  description : string;
  paper_ref : string;
  run : unit -> Table.t list;
}

val all : entry list

val find : string -> entry option

val diagrams : (string * (unit -> string)) list
(** Event-diagram reproductions (Figures 1-3), by id. *)

val run_everything : Format.formatter -> unit
(** Run every experiment and render every table and diagram. *)
