(** E13 — Section 3.4: per-message ordering overhead.

    CATOCS "imposes overhead on every message transmission and reception":
    a vector timestamp per message (4 bytes per group member) plus control
    traffic (stability gossip; sequencer orders). We tabulate bytes and
    control messages per data message as the group grows, for each
    ordering discipline. *)

type point = {
  ordering : Repro_catocs.Config.ordering;
  group_size : int;
  header_bytes_per_msg : float;
  control_msgs_per_data_msg : float;
  mean_delivery_delay_us : float;
}

val sweep : ?sizes:int list -> ?seed:int64 -> unit -> point list

val table : point list -> Table.t
val run : unit -> Table.t
