module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Group = Repro_catocs.Group
module Endpoint = Repro_catocs.Endpoint
module Metrics = Repro_catocs.Metrics

type point = {
  layout : string;
  groups : int;
  senders : int;
  bridge_peak_unstable_bytes : int;
  sender_peak_unstable_bytes : int;
  cross_group_violations : int;
  digests : int;
  header_bytes : int;
  messages : int;
}

type pmsg = Original of int | Digest of int

(* Build [partitions] causal subgroups over [senders] sender processes (a
   single group when [partitions] = 1), with a bridge and an observer
   belonging to every subgroup. The bridge relays: delivering Original k in
   subgroup j multicasts Digest k into subgroup (j+1) mod partitions (the
   same subgroup when there is only one). The observer counts digests whose
   cause it has not yet delivered. *)
let measure ~seed ~senders ~partitions =
  let net = Net.create ~latency:(Net.Uniform (500, 8_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering = Config.Causal } in
  let group_size = senders / partitions in
  let sender_pids =
    Array.init senders (fun i ->
        Engine.spawn engine ~name:(Printf.sprintf "s%d" i) (fun _ _ -> ()))
  in
  let bridge_pid = Engine.spawn engine ~name:"bridge" (fun _ _ -> ()) in
  let observer_pid = Engine.spawn engine ~name:"observer" (fun _ _ -> ()) in
  let bridge_endpoint =
    Endpoint.create ~engine ~self:bridge_pid ~mode:config.Config.transport ()
  in
  let observer_endpoint =
    Endpoint.create ~engine ~self:observer_pid ~mode:config.Config.transport ()
  in
  (* per-subgroup stacks *)
  let bridge_stacks = Array.make partitions None in
  let observer_stacks = Array.make partitions None in
  let sender_stacks = Array.make senders None in
  let delivered_originals : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let violations = ref 0 and digests = ref 0 in
  for j = 0 to partitions - 1 do
    let members =
      bridge_pid :: observer_pid
      :: (Array.to_list (Array.sub sender_pids (j * group_size) group_size))
    in
    let view = Group.make_view ~view_id:0 members in
    let shared = Stack.make_shared config in
    (* bridge: react by relaying a digest into the next subgroup *)
    let bridge_stack =
      Stack.create ~endpoint:bridge_endpoint ~engine ~shared ~config ~view
        ~self:bridge_pid
        ~callbacks:
          { Stack.null_callbacks with
            Stack.deliver =
              (fun ~sender:_ msg ->
                match msg with
                | Original k ->
                  incr digests;
                  let target = (j + 1) mod partitions in
                  (match bridge_stacks.(target) with
                   | Some stack -> Stack.multicast stack (Digest k)
                   | None -> ())
                | Digest _ -> ()) }
        ()
    in
    bridge_stacks.(j) <- Some bridge_stack;
    let observer_stack =
      Stack.create ~endpoint:observer_endpoint ~engine ~shared ~config ~view
        ~self:observer_pid
        ~callbacks:
          { Stack.null_callbacks with
            Stack.deliver =
              (fun ~sender:_ msg ->
                match msg with
                | Original k -> Hashtbl.replace delivered_originals k ()
                | Digest k ->
                  if not (Hashtbl.mem delivered_originals k) then
                    incr violations) }
        ()
    in
    observer_stacks.(j) <- Some observer_stack;
    Array.iteri
      (fun idx pid ->
        let global = (j * group_size) + idx in
        sender_stacks.(global) <-
          Some
            (Stack.create ~engine ~shared ~config ~view ~self:pid
               ~callbacks:Stack.null_callbacks ()))
      (Array.sub sender_pids (j * group_size) group_size)
  done;
  (* workload: each sender multicasts every 10ms into its subgroup *)
  Array.iteri
    (fun i stack_opt ->
      match stack_opt with
      | Some stack ->
        let cancel =
          Engine.every engine ~owner:(Stack.self stack)
            ~start:(Sim_time.us (1_000 + (i * 131)))
            ~period:(Sim_time.ms 10)
            (fun () -> Stack.multicast stack (Original ((i * 10_000) + Engine.now engine)))
        in
        Engine.at engine (Sim_time.ms 500) cancel
      | None -> ())
    sender_stacks;
  Engine.run ~until:(Sim_time.ms 700) engine;
  let stack_peak = function
    | Some stack -> (Stack.metrics stack).Metrics.peak_unstable_bytes
    | None -> 0
  in
  let bridge_peak =
    Array.fold_left (fun acc s -> acc + stack_peak s) 0 bridge_stacks
  in
  let sender_peak =
    Array.fold_left (fun acc s -> max acc (stack_peak s)) 0 sender_stacks
  in
  let header_bytes =
    let of_stack = function
      | Some stack -> (Stack.metrics stack).Metrics.header_bytes
      | None -> 0
    in
    Array.fold_left (fun acc s -> acc + of_stack s) 0 sender_stacks
    + Array.fold_left (fun acc s -> acc + of_stack s) 0 bridge_stacks
  in
  { layout =
      (if partitions = 1 then Printf.sprintf "one group of %d" (senders + 2)
       else Printf.sprintf "%d groups of %d + bridge" partitions (group_size + 2));
    groups = partitions;
    senders;
    bridge_peak_unstable_bytes = bridge_peak;
    sender_peak_unstable_bytes = sender_peak;
    cross_group_violations = !violations;
    digests = !digests;
    header_bytes;
    messages = Engine.messages_sent engine }

let sweep ?(senders = 24) ?(partitions = 4) ?(seed = 81L) () =
  [ measure ~seed ~senders ~partitions:1;
    measure ~seed ~senders ~partitions ]

let table points =
  let rows =
    List.map
      (fun p ->
        [ p.layout;
          Table.cell_int p.bridge_peak_unstable_bytes;
          Table.cell_int p.sender_peak_unstable_bytes;
          Printf.sprintf "%d/%d" p.cross_group_violations p.digests;
          Table.cell_int p.header_bytes;
          Table.cell_int p.messages ])
      points
  in
  Table.make ~id:"partitioning"
    ~title:"splitting one causal group into bridged subgroups"
    ~paper_ref:"Section 5 (causal domains)"
    ~columns:
      [ "layout"; "bridge peak buffer B"; "sender peak buffer B";
        "cause-before-digest violations"; "header bytes"; "messages" ]
    ~notes:
      [ "the bridge relays each subgroup's traffic into the next: a semantic causal chain across groups";
        "one group: the chain is ordered by CBCAST; partitioned: per-group clocks cannot see it";
        "the bridge also carries the buffering of every subgroup it joins" ]
    rows

let run () = table (sweep ())
