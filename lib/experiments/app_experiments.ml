module Config = Repro_catocs.Config
module Shop_floor = Repro_apps.Shop_floor
module Fire_alarm = Repro_apps.Fire_alarm
module Trading = Repro_apps.Trading
module Netnews = Repro_apps.Netnews
module Deceit_store = Repro_apps.Deceit_store
module Harp_store = Repro_apps.Harp_store
module Snapshot = Repro_apps.Snapshot
module Rpc_deadlock = Repro_apps.Rpc_deadlock
module Drilling = Repro_apps.Drilling
module Oven = Repro_apps.Oven

let rate n total = float_of_int n /. float_of_int (max 1 total)

let fig2_hidden_channel () =
  let row gap_ms =
    let config =
      { Shop_floor.default_config with
        Shop_floor.request_gap = Sim_time.ms gap_ms }
    in
    let r = Shop_floor.run config in
    [ Table.cell_int gap_ms;
      Table.cell_int r.Shop_floor.trials;
      Table.cell_pct (rate r.Shop_floor.naive_anomalies r.Shop_floor.trials);
      Table.cell_pct (rate r.Shop_floor.versioned_anomalies r.Shop_floor.trials);
      Table.cell_int r.Shop_floor.stale_rejected ]
  in
  Table.make ~id:"fig2-hidden-channel"
    ~title:"shop floor: hidden channel through a shared database"
    ~paper_ref:"Figure 2 / Section 3 limitation 1"
    ~columns:
      [ "request gap (ms)"; "trials"; "CATOCS naive anomalies";
        "versioned-replica anomalies"; "stale notifications rejected" ]
    ~notes:
      [ "anomaly: observer's view of the lot disagrees with the database after both notifications";
        "causal multicast cannot see the database ordering; version numbers can" ]
    (List.map row [ 4; 8; 16 ])

let fig3_external_channel () =
  let row (ordering, gap_ms) =
    let config =
      { Fire_alarm.default_config with
        Fire_alarm.ordering; event_gap = Sim_time.ms gap_ms }
    in
    let r = Fire_alarm.run config in
    [ Config.ordering_name ordering;
      Table.cell_int gap_ms;
      Table.cell_pct (rate r.Fire_alarm.naive_anomalies r.Fire_alarm.trials);
      Table.cell_pct
        (rate r.Fire_alarm.timestamped_anomalies r.Fire_alarm.trials) ]
  in
  Table.make ~id:"fig3-external-channel"
    ~title:"fire alarm: causality through the physical world"
    ~paper_ref:"Figure 3 / Section 3 limitation 1"
    ~columns:
      [ "ordering"; "event gap (ms)"; "CATOCS last-report anomalies";
        "timestamped-freshest anomalies" ]
    ~notes:
      [ "the second \"fire\" and \"fire out\" are concurrent: total order does not help";
        "sub-millisecond clock sync vs events milliseconds apart" ]
    (List.concat_map
       (fun ordering -> List.map (fun g -> row (ordering, g)) [ 4; 6; 10 ])
       [ Config.Causal; Config.Total_sequencer ])

let fig4_trading () =
  let row ordering =
    let config = { Trading.default_config with Trading.ordering } in
    let r = Trading.run config in
    [ Config.ordering_name ordering;
      Table.cell_int r.Trading.ticks;
      Table.cell_int r.Trading.naive_false_crossings;
      Table.cell_int r.Trading.naive_stale_pairings;
      Table.cell_int r.Trading.dep_cache_false_crossings;
      Table.cell_us_as_ms r.Trading.mean_display_lag_us ]
  in
  Table.make ~id:"fig4-trading"
    ~title:"trading floor: theoretical price vs underlying option price"
    ~paper_ref:"Figure 4 / Section 4.1, limitation 3"
    ~columns:
      [ "ordering"; "price ticks"; "naive false crossings";
        "naive stale pairings"; "dep-cache false crossings"; "dep-cache lag" ]
    ~notes:
      [ "the semantic constraint (theo after its base, before later bases) exceeds happens-before";
        "dependency fields pair each computed price with its base version: crossings impossible" ]
    (List.map row [ Config.Causal; Config.Total_sequencer ])

let netnews () =
  let row mode =
    let r = Netnews.run { Netnews.default_config with Netnews.mode } in
    [ Netnews.mode_name mode;
      Table.cell_int r.Netnews.articles_delivered;
      Table.cell_int r.Netnews.misordered_displays;
      Table.cell_int r.Netnews.parked_responses;
      Table.cell_us_as_ms r.Netnews.mean_inquiry_to_display_us;
      Table.cell_int r.Netnews.header_bytes;
      Table.cell_int r.Netnews.messages_sent ]
  in
  Table.make ~id:"netnews"
    ~title:"netnews: inquiry/response ordering"
    ~paper_ref:"Section 4.1"
    ~columns:
      [ "scheme"; "articles"; "misordered displays"; "responses parked";
        "response display latency"; "ordering header bytes"; "messages" ]
    ~notes:
      [ "dep-cache = the References-header fix: same zero misordering as causal multicast";
        "causal pays a vector timestamp on every article for the whole group" ]
    (List.map row
       [ Netnews.Fifo_naive; Netnews.Fifo_dep_cache; Netnews.Causal ])

let replicated_data () =
  let deceit_row label k crash =
    let r =
      Deceit_store.run
        { Deceit_store.default_config with
          Deceit_store.write_safety = k; crash }
    in
    [ label;
      Printf.sprintf "%d/%d" r.Deceit_store.writes_acked
        r.Deceit_store.writes_attempted;
      Table.cell_us_as_ms r.Deceit_store.ack_latency_mean_us;
      Table.cell_us_as_ms r.Deceit_store.ack_latency_p99_us;
      Table.cell_float ~decimals:1 r.Deceit_store.messages_per_write;
      Table.cell_int r.Deceit_store.acked_lost_at_survivor;
      Table.cell_bool r.Deceit_store.replicas_consistent ]
  in
  let harp_row label crash =
    let r = Harp_store.run { Harp_store.default_config with Harp_store.crash } in
    [ label;
      Printf.sprintf "%d/%d" r.Harp_store.writes_acked
        r.Harp_store.writes_attempted;
      Table.cell_us_as_ms r.Harp_store.ack_latency_mean_us;
      Table.cell_us_as_ms r.Harp_store.ack_latency_p99_us;
      Table.cell_float ~decimals:1 r.Harp_store.messages_per_write;
      Table.cell_int r.Harp_store.acked_lost_at_survivor;
      Table.cell_bool r.Harp_store.replicas_consistent ]
  in
  Table.make ~id:"replicated-data"
    ~title:"replicated store: Deceit-style CBCAST vs HARP-style transactions"
    ~paper_ref:"Section 4.4"
    ~columns:
      [ "scheme"; "acked"; "latency mean"; "latency p99"; "msgs/write";
        "acked writes lost"; "replicas consistent" ]
    ~notes:
      [ "deceit k = write-safety level: k=0 is asynchronous but not durable";
        "harp: two-phase commit over the availability list; stale retries refused at the state level";
        "unacked writes under crash were superseded or refused - never silently lost" ]
    [ deceit_row "deceit k=0" 0 None;
      deceit_row "deceit k=1" 1 None;
      deceit_row "deceit k=2 (all)" 2 None;
      deceit_row "deceit k=1 + replica crash" 1 (Some (1, Sim_time.ms 300));
      harp_row "harp" None;
      harp_row "harp + replica crash" (Some (1, Sim_time.ms 300));
      harp_row "harp + primary crash" (Some (0, Sim_time.ms 300)) ]

let predicate_detection () =
  let row mode =
    let r = Snapshot.run { Snapshot.default_config with Snapshot.mode } in
    [ Snapshot.mode_name mode;
      Table.cell_int r.Snapshot.transfers_completed;
      Table.cell_bool r.Snapshot.snapshot_consistent;
      Printf.sprintf "%d/%d" r.Snapshot.snapshot_sum r.Snapshot.expected_sum;
      Table.cell_int r.Snapshot.snapshot_messages;
      Table.cell_int r.Snapshot.total_messages;
      Table.cell_int r.Snapshot.ordering_header_bytes ]
  in
  Table.make ~id:"predicate-detection"
    ~title:"consistent cuts for global predicates (money conservation)"
    ~paper_ref:"Section 4.2"
    ~columns:
      [ "scheme"; "transfers"; "cut consistent"; "recorded/expected sum";
        "snapshot msgs"; "total msgs"; "ordering header bytes" ]
    ~notes:
      [ "catocs: every transfer is totally ordered multicast all the time";
        "markers: plain point-to-point transfers; cost paid only when a snapshot runs" ]
    (List.map row [ Snapshot.Catocs_cut; Snapshot.Chandy_lamport ])

let rpc_deadlock () =
  let row mode =
    let r = Rpc_deadlock.run { Rpc_deadlock.default_config with Rpc_deadlock.mode } in
    [ Rpc_deadlock.mode_name mode;
      Table.cell_int r.Rpc_deadlock.background_rpcs;
      Table.cell_bool r.Rpc_deadlock.deadlock_detected;
      Table.cell_float ~decimals:1 r.Rpc_deadlock.detection_latency_ms;
      Table.cell_int r.Rpc_deadlock.false_alarms;
      Table.cell_int r.Rpc_deadlock.messages_total;
      Table.cell_float ~decimals:2 r.Rpc_deadlock.messages_per_rpc ]
  in
  Table.make ~id:"rpc-deadlock"
    ~title:"RPC deadlock detection: causal multicast vs periodic wait-for"
    ~paper_ref:"Appendix 9.2"
    ~columns:
      [ "scheme"; "background rpcs"; "detected"; "latency (ms)";
        "false alarms"; "messages"; "msgs/rpc" ]
    ~notes:
      [ "van Renesse: 2 causal multicasts to the whole group per RPC";
        "periodic: instance-augmented wait-for edges to the monitor each period" ]
    (List.map row [ Rpc_deadlock.Van_renesse; Rpc_deadlock.Periodic_waitfor ])

let drilling () =
  let row (mode, crash) =
    let label =
      Printf.sprintf "%s%s" (Drilling.mode_name mode)
        (match crash with Some _ -> " + driller crash" | None -> "")
    in
    let r = Drilling.run { Drilling.default_config with Drilling.mode; crash } in
    [ label;
      Printf.sprintf "%d/%d" r.Drilling.drilled_once r.Drilling.holes;
      Table.cell_int r.Drilling.double_drilled;
      Table.cell_int r.Drilling.check_list;
      Table.cell_int r.Drilling.messages_total;
      Table.cell_float ~decimals:1 r.Drilling.messages_per_hole;
      Table.cell_float ~decimals:0 r.Drilling.completion_time_ms ]
  in
  Table.make ~id:"drilling"
    ~title:"drilling cell: distributed CATOCS scheduling vs central controller"
    ~paper_ref:"Appendix 9.1"
    ~columns:
      [ "scheme"; "holes drilled once"; "double drilled"; "check list";
        "messages"; "msgs/hole"; "completion (ms)" ]
    ~notes:
      [ "both must drill every hole exactly once and survive a driller failure";
        "central controller: communication linear in holes (assign + done + mirror)" ]
    (List.map row
       [ (Drilling.Central_controller, None);
         (Drilling.Central_controller, Some (2, Sim_time.ms 100));
         (Drilling.Catocs_scheduling, None);
         (Drilling.Catocs_scheduling, Some (2, Sim_time.ms 100)) ])

let serialization () =
  let row mode =
    let r =
      Repro_apps.Bank_transfer.run
        { Repro_apps.Bank_transfer.default_config with
          Repro_apps.Bank_transfer.mode }
    in
    let module B = Repro_apps.Bank_transfer in
    [ B.mode_name mode;
      Printf.sprintf "%d/%d" r.B.transfers_applied r.B.transfers_attempted;
      Table.cell_int r.B.aborted_transfers;
      Table.cell_int r.B.split_transfers;
      Table.cell_int r.B.final_sum_error;
      Table.cell_int r.B.conservation_violations;
      Table.cell_int r.B.overdrafts;
      Table.cell_bool r.B.replicas_agree ]
  in
  Table.make ~id:"serialization"
    ~title:"grouped updates (bank transfers): ordered ops vs transactions"
    ~paper_ref:"Section 3 limitation 2 (can't say together)"
    ~columns:
      [ "scheme"; "applied"; "refused"; "split transfers"; "money created";
        "observer saw non-conservation"; "overdrafts"; "replicas agree" ]
    ~notes:
      [ "catocs: debit and credit are separate (totally ordered) multicasts; a state-level \
refusal of one half cannot take the other half with it";
        "transactional: both halves are one atomic transaction; refusals abort the pair" ]
    (List.map row
       [ Repro_apps.Bank_transfer.Catocs_ops;
         Repro_apps.Bank_transfer.Transactional ])

let linearizability () =
  let module R = Repro_apps.Register_service in
  let row mode =
    let runs = 20 in
    let non_lin = ref 0 and stale = ref 0 and ops = ref 0 in
    for seed = 1 to runs do
      let r =
        R.run
          { R.default_config with
            R.read_mode = mode; seed = Int64.of_int seed }
      in
      if not r.R.linearizable then incr non_lin;
      stale := !stale + r.R.stale_reads;
      ops := !ops + r.R.operations
    done;
    [ R.mode_name mode;
      Table.cell_int runs;
      Table.cell_int !ops;
      Table.cell_int !non_lin;
      Table.cell_int !stale ]
  in
  Table.make ~id:"linearizability"
    ~title:"replicated register: client-observed consistency by read policy"
    ~paper_ref:"Section 4.4 (read-any/write-all) / Section 3 limitation 3"
    ~columns:
      [ "read policy"; "runs"; "operations"; "non-linearizable runs";
        "stale-read heuristic" ]
    ~notes:
      [ "writes cbcast with write-safety k=1; checked with the Wing-Gong linearizability search";
        "read-any: an acked write may be missing at the replica a read lands on";
        "read-primary: reads serialise through the writer - every run linearizable" ]
    (List.map row [ R.Read_any; R.Read_primary ])

let real_time () =
  let row (mode, drop) =
    let r =
      Oven.run { Oven.default_config with Oven.mode; drop_probability = drop }
    in
    [ Oven.mode_name mode;
      Table.cell_pct drop;
      Table.cell_float r.Oven.mean_tracking_error;
      Table.cell_float r.Oven.max_tracking_error;
      Table.cell_float ~decimals:1 r.Oven.mean_staleness_ms;
      Table.cell_int r.Oven.messages_total ]
  in
  Table.make ~id:"real-time"
    ~title:"oven monitoring: tracking error against the physical temperature"
    ~paper_ref:"Section 4.6 (sufficient consistency)"
    ~columns:
      [ "scheme"; "loss"; "mean |err| (degC)"; "max |err|";
        "mean staleness (ms)"; "messages" ]
    ~notes:
      [ "catocs: readings share a causal group with control traffic; loss needs retransmission";
        "timestamped: freshest reading wins, stale and lost ones simply ignored" ]
    (List.concat_map
       (fun drop ->
         List.map (fun mode -> row (mode, drop))
           [ Oven.Catocs_group; Oven.Timestamped_freshest ])
       [ 0.0; 0.1; 0.2 ])
