(** E7 — Section 5: group-membership change cost.

    "Membership change protocols also suppress the sending of new messages
    during a significant portion of the protocol": we crash one member of an
    N-member group under steady traffic and measure the flush — how long
    sends were suppressed, the control messages the view change cost
    (difference against an identical crash-free run), and undeliverable
    messages dropped at view installation. *)

type point = {
  group_size : int;
  flush_duration_ms : float;  (** max send-suppression time over members *)
  view_change_control_msgs : int;
      (** messages attributable to the view change *)
  dropped_at_view_change : int;
  post_change_delivery_ok : bool;
      (** a multicast after the change still reaches all survivors *)
}

val sweep : ?sizes:int list -> ?seed:int64 -> unit -> point list

val table : point list -> Table.t
val run : unit -> Table.t
