(** Event-diagram reproductions of the paper's figures, regenerated from
    actual protocol executions rather than drawn by hand. *)

type fig1_outcome = {
  diagram : string;
  deliveries : (int * string list) list;  (** member index, delivery order *)
  registry_snapshot : Repro_obs.Registry.snapshot;
      (** merged protocol-metrics snapshot over the three stacks; empty
          unless the run was created with [~metrics:true] *)
}

val fig1_run :
  ?engine_impl:Engine.impl ->
  ?obs:Repro_obs.Log.t ->
  ?recorder:Repro_analyze.Exec.Recorder.t ->
  ?causal_impl:Repro_catocs.Config.causal_impl ->
  ?metrics:bool ->
  unit ->
  fig1_outcome
(** The Figure 1 execution itself: m1 from Q, P reacting with m2, then the
    concurrent m3/m4. [obs] attaches a telemetry log to the group (the
    source for the exported Figure 1 trace); [recorder] feeds the causal
    sanitizer; [causal_impl] selects the causal layer (the figure's
    delivery properties must hold under both); [metrics] enables the
    per-stack registries. [engine_impl] defaults to [Sequential]; under
    [Parallel] the ASCII trace and causal graph are skipped (the [obs] log,
    which must then be [~synchronized:true], carries the cross-domain
    determinism evidence). *)

val fig1_causal_order : unit -> string
(** Figure 1: the 3-process diagram — m1 causally precedes m2 and m4; m3
    and m4 are concurrent. Rendered from a CBCAST run. *)

val fig2_hidden_channel : unit -> string
(** Figure 2: a shop-floor trial (seed-searched until the anomaly shows):
    "stop" reaches the observer before "start". *)

val fig3_external_channel : unit -> string
(** Figure 3: a fire-alarm trial where "fire out" is the last message
    received. *)

val fig1_table : unit -> Table.t
(** A machine-checkable summary of the Figure 1 properties. *)

val fig1_exec :
  ?causal_impl:Repro_catocs.Config.causal_impl -> unit -> Repro_analyze.Exec.t
(** The Figure 1 run as a recorded execution for the causal sanitizer: all
    ordering flows through the transport, so the analyzer should report no
    findings — under either causal implementation. *)

val fig2_exec :
  ?causal_impl:Repro_catocs.Config.causal_impl -> unit -> Repro_analyze.Exec.t
(** The Figure 2 shop-floor anomaly (first anomalous seed) as a recorded
    execution: one channel edge per lot through the shared database, which
    the analyzer reports as a hidden channel. *)

val fig3_exec :
  ?causal_impl:Repro_catocs.Config.causal_impl -> unit -> Repro_analyze.Exec.t
(** The Figure 3 fire-alarm anomaly: channel edges through the physical
    world between successive reports of one trial. *)
