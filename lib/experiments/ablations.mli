(** Ablations over the reproduction's design knobs (DESIGN.md).

    {!gossip_period}: stability knowledge spreads by gossip; gossiping less
    often saves control messages but leaves messages unstable — hence
    buffered — longer. This is Section 5's remark that slowing traffic down
    leaves "fewer application messages on which to piggyback acknowledgment
    information".

    {!latency_distribution}: the hidden-channel and semantic-constraint
    anomalies (Figures 2-4) are structural: changing the latency law moves
    the rates but none of them reaches zero under CATOCS, while the
    state-level fixes stay at exactly zero. *)

type gossip_point = {
  gossip_period_ms : int;
  peak_node_unstable_bytes : int;
  control_messages : int;
  mean_delivery_delay_us : float;
}

val gossip_sweep :
  ?group_size:int -> ?periods_ms:int list -> ?seed:int64 -> unit -> gossip_point list

val gossip_period : unit -> Table.t

type piggyback_point = {
  variant : string;
  drop : float;
  mean_queue_wait_us : float;
  delivered : int;
  expected : int;
  overhead_bytes_per_msg : float;
}

val piggyback_sweep : ?seed:int64 -> unit -> piggyback_point list

val piggyback : unit -> Table.t
(** Section 3.4 footnote 4: append unstable causal predecessors to each
    message instead of delaying dependants at receivers. *)

type distribution_point = {
  distribution : string;
  app : string;
  catocs_anomaly_rate : float;
  statelevel_anomaly_rate : float;
}

val latency_sweep : ?seed:int64 -> unit -> distribution_point list

val latency_distribution : unit -> Table.t
