module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Metrics = Repro_catocs.Metrics

type point = {
  ordering : Config.ordering;
  group_size : int;
  header_bytes_per_msg : float;
  control_msgs_per_data_msg : float;
  mean_delivery_delay_us : float;
}

let measure ~seed ~ordering ~group_size =
  let net = Net.create ~latency:(Net.Uniform (500, 3_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering } in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 211)))
          ~period:(Sim_time.ms 10)
          (fun () -> Stack.multicast stack i)
      in
      Engine.at engine (Sim_time.ms 500) cancel)
    stacks;
  Engine.run ~until:(Sim_time.ms 700) engine;
  let header_bytes = ref 0 and control = ref 0 and multicasts = ref 0 in
  let delay = Stats.Summary.create () in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      header_bytes := !header_bytes + m.Metrics.header_bytes;
      control := !control + m.Metrics.control_messages;
      multicasts := !multicasts + m.Metrics.multicasts_sent;
      if Stats.Summary.count m.Metrics.delivery_delay_us > 0 then
        Stats.Summary.add delay (Stats.Summary.mean m.Metrics.delivery_delay_us))
    stacks;
  let sends = max 1 (!multicasts * (group_size - 1)) in
  { ordering; group_size;
    header_bytes_per_msg = float_of_int !header_bytes /. float_of_int sends;
    control_msgs_per_data_msg =
      float_of_int !control /. float_of_int (max 1 !multicasts);
    mean_delivery_delay_us = Stats.Summary.mean delay }

let sweep ?(sizes = [ 4; 16; 64 ]) ?(seed = 31L) () =
  List.concat_map
    (fun group_size ->
      List.map
        (fun ordering -> measure ~seed ~ordering ~group_size)
        [ Config.Fifo; Config.Causal; Config.Total_sequencer;
          Config.Total_lamport ])
    sizes

let table points =
  let rows =
    List.map
      (fun p ->
        [ Config.ordering_name p.ordering;
          Table.cell_int p.group_size;
          Table.cell_float ~decimals:1 p.header_bytes_per_msg;
          Table.cell_float ~decimals:2 p.control_msgs_per_data_msg;
          Table.cell_us_as_ms p.mean_delivery_delay_us ])
      points
  in
  Table.make ~id:"overhead"
    ~title:"per-message ordering overhead vs group size"
    ~paper_ref:"Section 3.4 (limitation 4: can't say efficiently)"
    ~columns:
      [ "ordering"; "N"; "header B/msg"; "ctl msgs/data"; "mean delay" ]
    ~notes:
      [ "causal/total headers carry a vector timestamp: 4 bytes per member";
        "control = stability gossip + sequencer orders + flush traffic" ]
    rows

let run () = table (sweep ())
