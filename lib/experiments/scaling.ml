module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Metrics = Repro_catocs.Metrics

type point = {
  group_size : int;
  peak_node_unstable_msgs : int;
  peak_node_unstable_bytes : int;
  system_unstable_bytes : int;
  peak_graph_nodes : int;
  peak_graph_arcs : int;
  mean_delivery_delay_us : float;
  mean_transit_us : float;  (* send -> deliver, including receiver queueing *)
  messages_total : int;
  deliveries_total : int;  (* engine-level deliveries, incl. control traffic *)
  app_deliveries_total : int;  (* application callbacks across the group *)
  header_bytes_total : int;  (* ordering metadata sent, summed over members *)
  (* registry-derived columns; zero / nan / [] unless [~metrics:true] *)
  forward_copies : int;
  suppressed_copies : int;
  parked_copies : int;
  drained_copies : int;
  encoded_wire_bytes : int;  (* real frame bytes (Encoded wire format only) *)
  wire_packets : int;  (* logical packets, incl. frames inside batches *)
  link_sends : int;  (* physical link events; packets/links = coalesce ratio *)
  delivery_p50_us : float;
  delivery_p99_us : float;
  delivery_p999_us : float;
  stability_lag_p50_us : float;
  stability_lag_p99_us : float;
  stability_lag_p999_us : float;
  registry_snapshot : Repro_obs.Registry.snapshot;
}

(* the graph peaks need the shared causal graph: rebuild the group manually
   so we hold the shared context *)
let measure_with_graph ?(engine_impl = Engine.Sequential) ?obs
    ?(gauge_period = Sim_time.ms 10)
    ?(processing_time = Sim_time.zero)
    ?(duration = Sim_time.seconds 1) ?(send_period = Sim_time.ms 10)
    ?gossip_period
    ?(queue_impl = Config.Indexed_queue)
    ?(stability_impl = Config.Incremental_stability)
    ?(causal_impl = Config.Vector_causal)
    ?(stability_clock = Config.Dense_clock)
    ?(pc_overlay = Config.Pc_full_mesh) ?track_graph
    ?(metrics = false) ?wire_format ?batch_window
    ~seed n =
  let parallel =
    match engine_impl with Engine.Sequential -> false | Engine.Parallel _ -> true
  in
  (* the graph peaks and telemetry gauges read group-shared state the
     parallel lanes would race on; Stack.create rejects them, so default
     them off under Parallel instead of making every caller do it *)
  let track_graph =
    match track_graph with Some b -> b | None -> not parallel
  in
  if parallel && Option.is_some obs then
    invalid_arg "Scaling.measure_with_graph: telemetry needs Sequential";
  let net =
    Net.create ~latency:(Net.Uniform (500, 5_000)) ~processing_time ()
  in
  let engine = Engine.create ~impl:engine_impl ~seed ~net () in
  let config =
    (* PC-broadcast's structural causality argument needs FIFO links: the
       helper turns this reordering (but lossless) network into exactly
       that by upgrading the bare transport to per-link sequencing. BSS is
       insensitive to reordering, so it keeps the bare baseline. *)
    Config.with_causal_impl causal_impl
      { Config.default with
        Config.ordering = Config.Causal; queue_impl; stability_impl;
        stability_clock; pc_overlay; track_graph; metrics;
        wire_format =
          Option.value wire_format ~default:Config.default.Config.wire_format;
        batch_window =
          Option.value batch_window
            ~default:Config.default.Config.batch_window;
        gossip_period =
          Option.value gossip_period
            ~default:Config.default.Config.gossip_period }
  in
  let pids =
    List.init n (fun i ->
        Engine.spawn engine ~name:(Printf.sprintf "p%d" i) (fun _ _ -> ()))
  in
  let view = Repro_catocs.Group.make_view ~view_id:0 pids in
  let shared = Stack.make_shared ?obs config in
  (* the Encoded wire format frames real bytes, so it needs a payload
     codec; the sweep's payloads are the sender indices *)
  let payload_codec =
    match config.Config.wire_format with
    | Config.Encoded -> Some Repro_catocs.Wire_codec.int_payload
    | Config.Structural -> None
  in
  let stacks =
    List.map
      (fun pid ->
        Stack.create ?payload_codec ~engine ~shared ~config ~view ~self:pid
          ~callbacks:Stack.null_callbacks ())
      pids
    |> Array.of_list
  in
  let peak_nodes = ref 0 and peak_arcs = ref 0 in
  let cancel_sampler =
    Engine.every engine ~period:(Sim_time.ms 10) (fun () ->
        match Stack.shared_graph shared with
        | Some graph ->
          peak_nodes := max !peak_nodes (Causality.live_nodes graph);
          peak_arcs := max !peak_arcs (Causality.live_arcs graph)
        | None -> ())
  in
  let cancel_gauges =
    match obs with
    | None -> Fun.id
    | Some _ ->
      Engine.every engine ~period:gauge_period (fun () ->
          Array.iter Stack.record_gauges stacks)
  in
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 137)))
          ~period:send_period
          (fun () -> Stack.multicast stack i)
      in
      Engine.at engine duration cancel)
    stacks;
  Engine.at engine (Sim_time.add duration (Sim_time.ms 150)) cancel_sampler;
  Engine.at engine (Sim_time.add duration (Sim_time.ms 150)) cancel_gauges;
  Engine.run ~until:(Sim_time.add duration (Sim_time.ms 200)) engine;
  let peak_msgs = ref 0 and peak_bytes = ref 0 and system_bytes = ref 0 in
  let header_bytes = ref 0 in
  let app_deliveries = ref 0 in
  let delay = Stats.Summary.create () in
  let transit = Stats.Summary.create () in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      peak_msgs := max !peak_msgs m.Metrics.peak_unstable_count;
      peak_bytes := max !peak_bytes m.Metrics.peak_unstable_bytes;
      system_bytes := !system_bytes + m.Metrics.peak_unstable_bytes;
      header_bytes := !header_bytes + m.Metrics.header_bytes;
      app_deliveries := !app_deliveries + m.Metrics.delivered;
      let mean = Stats.Summary.mean m.Metrics.delivery_delay_us in
      if not (Float.is_nan mean) then Stats.Summary.add delay mean;
      let mean_transit = Stats.Summary.mean m.Metrics.transit_us in
      if not (Float.is_nan mean_transit) then Stats.Summary.add transit mean_transit)
    stacks;
  (* per-stack registries are private to their lanes, so merging the
     snapshots after the run is parallel-safe (and, being a sorted merge of
     commutative samples, domain-count independent) *)
  let snapshot =
    if metrics then
      Repro_obs.Registry.merge_all
        (Array.to_list
           (Array.map
              (fun s -> Repro_obs.Registry.snapshot (Stack.registry s))
              stacks))
    else []
  in
  let counter layer name =
    Repro_obs.Registry.counter_total snapshot ~layer ~name
  in
  let pct layer name q =
    match Repro_obs.Registry.histo snapshot ~layer ~name with
    | Some h -> Repro_obs.Histo.percentile h q
    | None -> Float.nan
  in
  { group_size = n;
    peak_node_unstable_msgs = !peak_msgs;
    peak_node_unstable_bytes = !peak_bytes;
    system_unstable_bytes = !system_bytes;
    peak_graph_nodes = !peak_nodes;
    peak_graph_arcs = !peak_arcs;
    mean_delivery_delay_us = Stats.Summary.mean delay;
    mean_transit_us = Stats.Summary.mean transit;
    messages_total = Engine.messages_sent engine;
    deliveries_total = Engine.messages_delivered engine;
    app_deliveries_total = !app_deliveries;
    header_bytes_total = !header_bytes;
    forward_copies = counter Repro_obs.Event.Ordering "forward_copies";
    suppressed_copies = counter Repro_obs.Event.Ordering "suppressed_copies";
    parked_copies = counter Repro_obs.Event.Ordering "parked_copies";
    drained_copies = counter Repro_obs.Event.Ordering "drain_copies";
    encoded_wire_bytes = counter Repro_obs.Event.Transport "wire_bytes";
    wire_packets = counter Repro_obs.Event.Transport "packets";
    link_sends = counter Repro_obs.Event.Transport "link_sends";
    delivery_p50_us = pct Repro_obs.Event.Ordering "delivery_latency_us" 0.5;
    delivery_p99_us = pct Repro_obs.Event.Ordering "delivery_latency_us" 0.99;
    delivery_p999_us = pct Repro_obs.Event.Ordering "delivery_latency_us" 0.999;
    stability_lag_p50_us = pct Repro_obs.Event.Stability "stability_lag_us" 0.5;
    stability_lag_p99_us = pct Repro_obs.Event.Stability "stability_lag_us" 0.99;
    stability_lag_p999_us =
      pct Repro_obs.Event.Stability "stability_lag_us" 0.999;
    registry_snapshot = snapshot }

let sweep ?(sizes = [ 4; 8; 16; 32; 48 ]) ?(seed = 11L) ?engine_impl
    ?processing_time
    ?duration ?send_period ?gossip_period ?queue_impl ?stability_impl
    ?causal_impl ?stability_clock ?pc_overlay ?track_graph
    ?metrics ?wire_format ?batch_window () =
  List.map
    (fun n ->
      measure_with_graph ?engine_impl ?processing_time ?duration ?send_period
        ?gossip_period ?queue_impl ?stability_impl ?causal_impl
        ?stability_clock ?pc_overlay ?track_graph
        ?metrics ?wire_format ?batch_window ~seed n)
    sizes

let table points =
  let rows =
    List.map
      (fun p ->
        [ Table.cell_int p.group_size;
          Table.cell_int p.peak_node_unstable_msgs;
          Table.cell_int p.peak_node_unstable_bytes;
          Table.cell_int p.system_unstable_bytes;
          Table.cell_int p.peak_graph_nodes;
          Table.cell_int p.peak_graph_arcs;
          Table.cell_us_as_ms p.mean_delivery_delay_us;
          Table.cell_int p.messages_total ])
      points
  in
  let slope select =
    Table.fit_log_slope
      (List.map
         (fun p -> (float_of_int p.group_size, float_of_int (select p)))
         points)
  in
  Table.make ~id:"buffering-scaling"
    ~title:"CATOCS unstable-message buffering vs group size"
    ~paper_ref:"Section 5 (quadratic buffering growth claim)"
    ~columns:
      [ "N"; "node peak msgs"; "node peak bytes"; "system peak bytes";
        "graph nodes"; "graph arcs"; "mean delay"; "messages" ]
    ~notes:
      [ Printf.sprintf "fitted growth exponents: node bytes ~ N^%.2f, system bytes ~ N^%.2f, graph arcs ~ N^%.2f"
          (slope (fun p -> p.peak_node_unstable_bytes))
          (slope (fun p -> p.system_unstable_bytes))
          (slope (fun p -> p.peak_graph_arcs));
        "constant per-process send rate; paper predicts node ~ N (>=1), system ~ N^2" ]
    rows

let run () = table (sweep ())

(* Section 5 assumes the propagation time T is non-decreasing in system
   size; with a receiver-side processing cost per message, delivery delay
   grows with offered load (N x rate), which in turn keeps messages
   unstable longer — delay and buffering compound. *)
let loaded_table () =
  let points = sweep ~sizes:[ 4; 8; 16; 32 ] ~processing_time:(Sim_time.us 250) () in
  let rows =
    List.map
      (fun p ->
        [ Table.cell_int p.group_size;
          Table.cell_us_as_ms p.mean_transit_us;
          Table.cell_int p.peak_node_unstable_msgs;
          Table.cell_int p.peak_node_unstable_bytes ])
      points
  in
  let slope =
    Table.fit_log_slope
      (List.map
         (fun p ->
           (float_of_int p.group_size, float_of_int p.peak_node_unstable_bytes))
         points)
  in
  Table.make ~id:"scaling-under-load"
    ~title:"delivery delay and buffering with per-message processing cost"
    ~paper_ref:"Section 5 (T non-decreasing with system size)"
    ~columns:[ "N"; "mean transit"; "node peak msgs"; "node peak bytes" ]
    ~notes:
      [ "250us receiver cost per message; per-process send rate constant";
        Printf.sprintf
          "longer T keeps messages unstable longer: node buffering now fits N^%.2f"
          slope ]
    rows
