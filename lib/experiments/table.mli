(** Result tables: every experiment renders one or more of these, mirroring
    the figures/claims of the paper (EXPERIMENTS.md indexes them). *)

type t = {
  id : string;  (** stable identifier, e.g. "fig2-hidden-channel" *)
  title : string;
  paper_ref : string;  (** where in the paper the claim lives *)
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  paper_ref:string ->
  columns:string list ->
  ?notes:string list ->
  string list list ->
  t

val render : Format.formatter -> t -> unit
(** Aligned ASCII table with header, ref line and notes. *)

val print : t -> unit
(** [render] to stdout. *)

(* cell formatting helpers *)
val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_pct : float -> string
(** [cell_pct 0.25] is ["25.0%"]. *)

val cell_us_as_ms : float -> string
(** Microseconds rendered as milliseconds with 2 decimals. *)

val fit_log_slope : (float * float) list -> float
(** Least-squares slope of [log y] against [log x]: the growth exponent used
    by the Section 5 scaling experiments. Points with non-positive
    coordinates are ignored. *)
