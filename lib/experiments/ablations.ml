module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Metrics = Repro_catocs.Metrics
module Shop_floor = Repro_apps.Shop_floor
module Fire_alarm = Repro_apps.Fire_alarm
module Trading = Repro_apps.Trading

type gossip_point = {
  gossip_period_ms : int;
  peak_node_unstable_bytes : int;
  control_messages : int;
  mean_delivery_delay_us : float;
}

let gossip_measure ~seed ~group_size ~period_ms =
  let net = Net.create ~latency:(Net.Uniform (500, 5_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config =
    { Config.default with
      Config.ordering = Config.Causal;
      gossip_period = Sim_time.ms period_ms }
  in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 149)))
          ~period:(Sim_time.ms 10)
          (fun () -> Stack.multicast stack i)
      in
      Engine.at engine (Sim_time.seconds 1) cancel)
    stacks;
  Engine.run ~until:(Sim_time.add (Sim_time.seconds 1) (Sim_time.ms 100)) engine;
  let peak = ref 0 and control = ref 0 in
  let delay = Stats.Summary.create () in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      peak := max !peak m.Metrics.peak_unstable_bytes;
      control := !control + m.Metrics.control_messages;
      if Stats.Summary.count m.Metrics.delivery_delay_us > 0 then
        Stats.Summary.add delay (Stats.Summary.mean m.Metrics.delivery_delay_us))
    stacks;
  { gossip_period_ms = period_ms;
    peak_node_unstable_bytes = !peak;
    control_messages = !control;
    mean_delivery_delay_us = Stats.Summary.mean delay }

let gossip_sweep ?(group_size = 16) ?(periods_ms = [ 5; 20; 100; 500 ])
    ?(seed = 61L) () =
  List.map (fun p -> gossip_measure ~seed ~group_size ~period_ms:p) periods_ms

let gossip_period () =
  let points = gossip_sweep () in
  let rows =
    List.map
      (fun p ->
        [ Table.cell_int p.gossip_period_ms;
          Table.cell_int p.peak_node_unstable_bytes;
          Table.cell_int p.control_messages;
          Table.cell_us_as_ms p.mean_delivery_delay_us ])
      points
  in
  Table.make ~id:"gossip-ablation"
    ~title:"stability gossip period: buffering vs control traffic"
    ~paper_ref:"Section 5 (stabilising messages / piggyback trade-off)"
    ~columns:
      [ "gossip period (ms)"; "node peak unstable bytes"; "control msgs";
        "mean delivery delay" ]
    ~notes:
      [ "16-member causal group, 10ms per-member send period";
        "under steady traffic, piggybacked vector timestamps bound the buffers; \
gossip cost falls with the period and matters for quiet members and tails" ]
    rows

type piggyback_point = {
  variant : string;
  drop : float;
  mean_queue_wait_us : float;
  delivered : int;
  expected : int;
  overhead_bytes_per_msg : float;
}

let piggyback_measure ~seed ~piggyback ~drop =
  let group_size = 6 in
  let net =
    Net.create ~latency:(Net.Uniform (500, 20_000)) ~drop_probability:drop ()
  in
  let engine = Engine.create ~seed ~net () in
  let config =
    { Config.default with
      Config.ordering = Config.Causal; piggyback_history = piggyback }
  in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  let sends = ref 0 in
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 229)))
          ~period:(Sim_time.ms 10)
          (fun () -> incr sends; Stack.multicast stack i)
      in
      Engine.at engine (Sim_time.ms 500) cancel)
    stacks;
  Engine.run ~until:(Sim_time.seconds 1) engine;
  let wait = Stats.Summary.create () in
  let delivered = ref 0 and overhead = ref 0 and multicasts = ref 0 in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      delivered := !delivered + m.Metrics.delivered;
      overhead := !overhead + m.Metrics.header_bytes;
      multicasts := !multicasts + m.Metrics.multicasts_sent;
      if Stats.Summary.count m.Metrics.delivery_delay_us > 0 then
        Stats.Summary.add wait (Stats.Summary.mean m.Metrics.delivery_delay_us))
    stacks;
  { variant = (if piggyback then "causal + history piggyback" else "causal (delay)");
    drop;
    mean_queue_wait_us = Stats.Summary.mean wait;
    delivered = !delivered;
    expected = !sends * group_size;
    overhead_bytes_per_msg =
      float_of_int !overhead
      /. float_of_int (max 1 (!multicasts * (group_size - 1))) }

let piggyback_sweep ?(seed = 101L) () =
  List.concat_map
    (fun drop ->
      [ piggyback_measure ~seed ~piggyback:false ~drop;
        piggyback_measure ~seed ~piggyback:true ~drop ])
    [ 0.0; 0.05 ]

let piggyback () =
  let points = piggyback_sweep () in
  let rows =
    List.map
      (fun p ->
        [ p.variant;
          Table.cell_pct p.drop;
          Table.cell_us_as_ms p.mean_queue_wait_us;
          Printf.sprintf "%d/%d" p.delivered p.expected;
          Table.cell_float ~decimals:1 p.overhead_bytes_per_msg ])
      points
  in
  Table.make ~id:"piggyback-ablation"
    ~title:"delaying dependants vs appending causal history to messages"
    ~paper_ref:"Section 3.4 footnote 4"
    ~columns:
      [ "variant"; "loss"; "mean queue wait"; "delivered/expected";
        "overhead B/msg" ]
    ~notes:
      [ "piggyback: each message carries the sender's unstable predecessors";
        "it shrinks gap waits and even masks loss (bare transport), at a large wire cost -";
        "\"this technique can significantly increase network traffic\"" ]
    rows

type distribution_point = {
  distribution : string;
  app : string;
  catocs_anomaly_rate : float;
  statelevel_anomaly_rate : float;
}

let distributions =
  [ ("uniform 0.5-12ms", Net.Uniform (500, 12_000));
    ("exponential mean 4ms", Net.Exponential { mean_us = 4_000.0; floor = 500 });
    ("fixed 3ms", Net.Fixed 3_000) ]

let latency_sweep ?(seed = 71L) () =
  let rate n total = float_of_int n /. float_of_int (max 1 total) in
  List.concat_map
    (fun (name, latency) ->
      let shop =
        Shop_floor.run { Shop_floor.default_config with Shop_floor.seed; latency }
      in
      let fire =
        Fire_alarm.run { Fire_alarm.default_config with Fire_alarm.seed; latency }
      in
      let trading =
        Trading.run { Trading.default_config with Trading.seed; latency }
      in
      [ { distribution = name; app = "shop-floor (fig2)";
          catocs_anomaly_rate = rate shop.Shop_floor.naive_anomalies shop.Shop_floor.trials;
          statelevel_anomaly_rate =
            rate shop.Shop_floor.versioned_anomalies shop.Shop_floor.trials };
        { distribution = name; app = "fire-alarm (fig3)";
          catocs_anomaly_rate = rate fire.Fire_alarm.naive_anomalies fire.Fire_alarm.trials;
          statelevel_anomaly_rate =
            rate fire.Fire_alarm.timestamped_anomalies fire.Fire_alarm.trials };
        { distribution = name; app = "trading (fig4)";
          catocs_anomaly_rate =
            rate trading.Trading.naive_false_crossings trading.Trading.ticks;
          statelevel_anomaly_rate =
            rate trading.Trading.dep_cache_false_crossings trading.Trading.ticks } ])
    distributions

let latency_distribution () =
  let points = latency_sweep () in
  let rows =
    List.map
      (fun p ->
        [ p.app; p.distribution;
          Table.cell_pct p.catocs_anomaly_rate;
          Table.cell_pct p.statelevel_anomaly_rate ])
      points
  in
  Table.make ~id:"distribution-ablation"
    ~title:"anomaly rates across latency distributions"
    ~paper_ref:"DESIGN.md ablation; Figures 2-4"
    ~columns:[ "scenario"; "latency law"; "CATOCS anomalies"; "state-level" ]
    ~notes:
      [ "rates shift with the network model; the state-level column is zero under every law";
        "fixed latency removes reordering between equal-length paths, so some rates can reach 0 there" ]
    rows
