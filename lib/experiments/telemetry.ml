module Shop_floor = Repro_apps.Shop_floor
module Fire_alarm = Repro_apps.Fire_alarm
module Trading = Repro_apps.Trading

type scenario = {
  name : string;
  descr : string;
  run :
    unit ->
    Repro_obs.Log.t * (int * string) list * Repro_obs.Registry.snapshot;
      (* snapshot is the merged per-stack protocol-metrics registry; empty
         for scenarios that do not enable [Config.metrics] *)
}

(* Group members are spawned first and in name order by
   [Stack.create_group], so their pids are 0..n-1 deterministically; any
   extra endpoints (database, client) spawn after the group and emit no
   telemetry. *)
let numbered names = List.mapi (fun i n -> (i, n)) names

let fig1 () =
  let log = Repro_obs.Log.create () in
  let outcome = Diagrams.fig1_run ~obs:log ~metrics:true () in
  (log, numbered [ "P"; "Q"; "R" ], outcome.Diagrams.registry_snapshot)

let fig1_pc () =
  let log = Repro_obs.Log.create () in
  let outcome =
    Diagrams.fig1_run ~obs:log ~causal_impl:Repro_catocs.Config.Pc_causal
      ~metrics:true ()
  in
  (log, numbered [ "P"; "Q"; "R" ], outcome.Diagrams.registry_snapshot)

let fig1_hybrid () =
  let log = Repro_obs.Log.create () in
  let outcome =
    Diagrams.fig1_run ~obs:log ~causal_impl:Repro_catocs.Config.Hybrid_causal
      ~metrics:true ()
  in
  (log, numbered [ "P"; "Q"; "R" ], outcome.Diagrams.registry_snapshot)

let fig2 () =
  let log = Repro_obs.Log.create () in
  ignore
    (Shop_floor.run ~obs:log
       { Shop_floor.default_config with Shop_floor.trials = 3 });
  (log, numbered [ "sfc1"; "sfc2"; "observer" ], [])

let fig3 () =
  let log = Repro_obs.Log.create () in
  ignore
    (Fire_alarm.run ~obs:log
       { Fire_alarm.default_config with Fire_alarm.trials = 3 });
  (log, numbered [ "furnace-P"; "observer-Q"; "monitor-R" ], [])

let fig4 () =
  let log = Repro_obs.Log.create () in
  ignore
    (Trading.run ~obs:log { Trading.default_config with Trading.ticks = 40 });
  (log, numbered [ "option-pricing"; "theoretic-pricing"; "monitor" ], [])

let scaling64 () =
  let log = Repro_obs.Log.create () in
  ignore
    (Scaling.measure_with_graph ~obs:log ~duration:(Sim_time.ms 200) ~seed:11L
       64);
  (log, numbered (List.init 64 (Printf.sprintf "p%d")), [])

(* The same 64-member run over PC-broadcast: the unstable-bytes gauges in
   this trace carry O(1) per-message metadata instead of 64-entry vectors —
   the visual counterpart of the BENCH_delivery.json metadata curves. *)
let scaling_metadata () =
  let log = Repro_obs.Log.create () in
  ignore
    (Scaling.measure_with_graph ~obs:log ~duration:(Sim_time.ms 200)
       ~causal_impl:Repro_catocs.Config.Pc_causal ~seed:11L 64);
  (log, numbered (List.init 64 (Printf.sprintf "p%d")), [])

(* The scaling run that the n=4096 bench points rely on: hybrid buffering
   over the PC overlay with the sparse stability tracker. Delivery timing
   is identical to the dense-clock run (the tracker only changes storage),
   so the trace doubles as a visual regression for that equivalence. *)
let scaling_sparse () =
  let log = Repro_obs.Log.create () in
  ignore
    (Scaling.measure_with_graph ~obs:log ~duration:(Sim_time.ms 200)
       ~causal_impl:Repro_catocs.Config.Hybrid_causal
       ~stability_clock:Repro_catocs.Config.Sparse_clock ~seed:11L 64);
  (log, numbered (List.init 64 (Printf.sprintf "p%d")), [])

let all =
  [ { name = "fig1";
      descr = "Figure 1 causal-order diagram run (P/Q/R, m1..m4)";
      run = fig1 };
    { name = "fig2-shop-floor";
      descr = "Figure 2 shop-floor hidden-channel run (3 lots)";
      run = fig2 };
    { name = "fig3-fire-alarm";
      descr = "Figure 3 fire-alarm external-channel run (3 trials)";
      run = fig3 };
    { name = "fig4-trading";
      descr = "Figure 4 trading false-crossing run (40 ticks)";
      run = fig4 };
    { name = "fig1-pc";
      descr = "Figure 1 run over the PC-broadcast causal layer";
      run = fig1_pc };
    { name = "scaling-n64";
      descr = "64-member buffering-scaling run with per-node gauge sampling";
      run = scaling64 };
    { name = "fig1-hybrid";
      descr = "Figure 1 run over hybrid-buffering causal delivery";
      run = fig1_hybrid };
    { name = "scaling-metadata";
      descr =
        "64-member scaling run under PC-broadcast constant metadata \
         (unstable-bytes gauges)";
      run = scaling_metadata };
    { name = "scaling-sparse";
      descr =
        "64-member scaling run, hybrid causal delivery over the sparse \
         stability tracker";
      run = scaling_sparse } ]

let find name = List.find_opt (fun s -> s.name = name) all
