(** One table per application case study (Section 4 and the Appendix). *)

val fig2_hidden_channel : unit -> Table.t
(** Figure 2 / limitation 1: shop-floor anomaly rate, CATOCS naive view vs
    versioned replica, over a request-gap sweep. *)

val fig3_external_channel : unit -> Table.t
(** Figure 3 / limitation 1: fire-alarm anomaly rate under causal {e and}
    total order vs real-time timestamps. *)

val fig4_trading : unit -> Table.t
(** Figure 4 / limitation 3: false price crossings under causal and total
    order vs the dependency-field cache. *)

val netnews : unit -> Table.t
(** Section 4.1: misordered displays and per-article costs across
    fifo-naive, fifo+dep-cache and causal multicast. *)

val replicated_data : unit -> Table.t
(** Section 4.4: Deceit-style (write-safety k) vs HARP-style transactional
    replication, without and with crashes. *)

val predicate_detection : unit -> Table.t
(** Section 4.2: consistent cuts — CATOCS-on-all-traffic vs
    Chandy-Lamport markers. *)

val rpc_deadlock : unit -> Table.t
(** Appendix 9.2: van Renesse causal detection vs periodic wait-for. *)

val drilling : unit -> Table.t
(** Appendix 9.1: CATOCS distributed scheduling vs central controller. *)

val serialization : unit -> Table.t
(** Section 3 limitation 2: grouped operations (bank transfers) under
    totally ordered per-operation multicast vs transactions. *)

val linearizability : unit -> Table.t
(** Section 4.4 read-any vs read-primary, verified with the linearizability
    checker. *)

val real_time : unit -> Table.t
(** Section 4.6: oven-monitoring tracking error, CATOCS group vs
    timestamped freshest-value, over a loss sweep. *)
