(** E6 — Section 5: CATOCS buffering growth with system size.

    A group of N members each multicasting at a fixed per-process rate; we
    measure the unstable-message buffer a single node must hold (Section
    5's claim: per-node buffering grows linearly in N, hence system-wide
    quadratically) and the size of the active causal graph. The growth
    exponents are fitted from the sweep. *)

type point = {
  group_size : int;
  peak_node_unstable_msgs : int;  (** max over members *)
  peak_node_unstable_bytes : int;
  system_unstable_bytes : int;  (** sum of per-node peaks *)
  peak_graph_nodes : int;
  peak_graph_arcs : int;
  mean_delivery_delay_us : float;
  mean_transit_us : float;
      (** end-to-end send->deliver, including receiver queueing *)
  messages_total : int;
  deliveries_total : int;
      (** engine-level deliveries across the group, including control
          traffic (gossip, acks, overlay forwards) *)
  app_deliveries_total : int;
      (** application deliver-callback invocations across the group — the
          denominator for per-delivery metadata cost *)
  header_bytes_total : int;
      (** ordering metadata transmitted, summed over members: the quantity
          whose per-delivery mean is O(group) for BSS vector timestamps and
          O(1) for PC-broadcast *)
  forward_copies : int;
      (** PC-broadcast forward-on-first-delivery copies across the group
          (zero, like every registry-derived field below, unless the run
          was created with [~metrics:true]) *)
  suppressed_copies : int;
      (** duplicate copies the hybrid layer suppressed (expected ~0 on a
          FIFO-reliable network: suppression only pays off under loss) *)
  parked_copies : int;  (** copies parked for closed overlay links *)
  drained_copies : int;  (** parked copies later drained by a Pc_pong *)
  encoded_wire_bytes : int;
      (** real frame bytes put on the wire — non-zero only under the
          [Encoded] wire format *)
  wire_packets : int;
      (** logical packets sent, counting each frame inside a batch *)
  link_sends : int;
      (** physical link events; [wire_packets /. link_sends] is the
          batching coalesce ratio (1.0 without a batch window) *)
  delivery_p50_us : float;  (** send->deliver latency percentiles ... *)
  delivery_p99_us : float;
  delivery_p999_us : float;  (** ... over every application delivery *)
  stability_lag_p50_us : float;
      (** deliver->stable lag percentiles from the stability tracker's
          registry histogram *)
  stability_lag_p99_us : float;
  stability_lag_p999_us : float;
  registry_snapshot : Repro_obs.Registry.snapshot;
      (** the merged per-stack protocol-metrics snapshot the fields above
          are read from; empty without [~metrics:true] *)
}

val measure_with_graph :
  ?engine_impl:Engine.impl ->
  ?obs:Repro_obs.Log.t ->
  ?gauge_period:Sim_time.t ->
  ?processing_time:Sim_time.t ->
  ?duration:Sim_time.t ->
  ?send_period:Sim_time.t ->
  ?gossip_period:Sim_time.t ->
  ?queue_impl:Repro_catocs.Config.queue_impl ->
  ?stability_impl:Repro_catocs.Config.stability_impl ->
  ?causal_impl:Repro_catocs.Config.causal_impl ->
  ?stability_clock:Repro_catocs.Config.stability_clock ->
  ?pc_overlay:Repro_catocs.Config.pc_overlay ->
  ?track_graph:bool ->
  ?metrics:bool ->
  ?wire_format:Repro_catocs.Config.wire_format ->
  ?batch_window:Sim_time.t ->
  seed:int64 ->
  int ->
  point
(** One measured run at group size [n]. With [obs], the group's stacks log
    lifecycle spans into it and every member's occupancy gauges (unstable
    msgs/bytes, queue depth, blocked count) are sampled every
    [gauge_period] (default 10 ms) — the source for the n=64 scaling trace
    export. [engine_impl] (default [Sequential]) selects the engine
    strategy; under [Parallel], [track_graph] defaults to false and [obs]
    is rejected (both are group-shared mutable state the lanes would race
    on), and [processing_time] must stay zero. [metrics] enables the
    per-stack protocol registries that feed the point's copy counters,
    wire totals and latency percentiles (registries are per-stack, so they
    stay parallel-safe; the merged snapshot is domain-count independent).
    [wire_format] and [batch_window] override the wire representation and
    transport coalescing window (see {!Repro_catocs.Config}). *)

val sweep :
  ?sizes:int list -> ?seed:int64 -> ?engine_impl:Engine.impl ->
  ?processing_time:Sim_time.t ->
  ?duration:Sim_time.t -> ?send_period:Sim_time.t ->
  ?gossip_period:Sim_time.t ->
  ?queue_impl:Repro_catocs.Config.queue_impl ->
  ?stability_impl:Repro_catocs.Config.stability_impl ->
  ?causal_impl:Repro_catocs.Config.causal_impl ->
  ?stability_clock:Repro_catocs.Config.stability_clock ->
  ?pc_overlay:Repro_catocs.Config.pc_overlay ->
  ?track_graph:bool ->
  ?metrics:bool ->
  ?wire_format:Repro_catocs.Config.wire_format ->
  ?batch_window:Sim_time.t -> unit -> point list
(** [duration] bounds the send phase (default 1 simulated second);
    [send_period] is the per-process multicast period (default 10 ms);
    [gossip_period] overrides the stability-gossip period (large sweeps
    slow it down to bound the n^2 gossip volume); [queue_impl] selects the
    delivery-queue implementation under test, and [stability_impl] the
    stability tracker; [causal_impl] selects BSS vector timestamps or
    PC-broadcast constant metadata (PC runs switch the transport to
    [Fifo_order] and disseminate over [pc_overlay]); [track_graph] can be
    disabled to exclude shared-graph bookkeeping from throughput
    measurements. *)

val table : point list -> Table.t
(** Includes fitted log-log growth exponents in the notes. *)

val run : unit -> Table.t

val loaded_table : unit -> Table.t
(** The same sweep with a per-message receiver processing cost: delivery
    delay (the paper's T) grows with N, compounding the buffering. *)
