(** Section 4.1, the Netnews scale objection: "to match actual causality to
    the incidental ordering of CATOCS, a new causal group would have to be
    created for each inquiry. The number of resulting causal groups would
    be enormous... The amount of state maintained by the communication
    system is proportional to the number of causal groups."

    We run the inquiry/response workload both ways: one causal group
    carrying everything (over-constrained ordering, but one set of state),
    and one causal group {e per inquiry} (the ordering-precise layout the
    paper analyses). Per-process protocol state and control traffic grow
    linearly with the number of groups. *)

type point = {
  layout : string;
  group_count : int;
  control_messages : int;  (** gossip across all groups, whole run *)
  comm_state_bytes_per_process : int;
      (** vector clock + stability matrix for every membership *)
  misordered : int;  (** responses delivered before their inquiry *)
  messages : int;
}

val sweep : ?readers:int -> ?inquiries:int list -> ?seed:int64 -> unit -> point list

val table : point list -> Table.t
val run : unit -> Table.t
