(** Section 5: "Partitioning a large process group into smaller process
    groups does not necessarily reduce this problem unless the smaller
    groups are not causally related."

    The same sender population either forms one big causal group, or is
    split into k subgroups bridged by a relay member (in every subgroup)
    that reacts to traffic in one subgroup by multicasting a digest into
    the next — a semantic causal chain {e across} groups. An observer, also
    in every subgroup, checks whether digests ever arrive before their
    causes:

    - one big group: the chain is inside the group, CBCAST orders it;
    - partitioned: per-group vector clocks know nothing of each other, so
      the cross-group order is violated — or the bridge member must carry
      the buffering of every subgroup it connects, which is the cost the
      partitioning was meant to shed. *)

type point = {
  layout : string;
  groups : int;
  senders : int;
  bridge_peak_unstable_bytes : int;
      (** total across the bridge's group memberships *)
  sender_peak_unstable_bytes : int;  (** worst ordinary member *)
  cross_group_violations : int;
      (** digests delivered before their causes at the observer *)
  digests : int;
  header_bytes : int;
  messages : int;
}

val sweep : ?senders:int -> ?partitions:int -> ?seed:int64 -> unit -> point list

val table : point list -> Table.t
val run : unit -> Table.t
