module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Tpc = Repro_txn.Two_phase_commit

type point = {
  scheme : string;
  k : int;
  trials : int;
  survivors_have_update : int;
  sender_diverged : int;
  survivor_partial : int;
}

let catocs_trial ~seed ~group_size ~k =
  let net = Net.create ~latency:(Net.Uniform (500, 3_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering = Config.Causal } in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  let delivered = Array.make group_size false in
  Array.iteri
    (fun i stack ->
      Stack.set_callbacks stack
        { Stack.null_callbacks with
          Stack.deliver = (fun ~sender:_ _ -> delivered.(i) <- true) })
    stacks;
  let sender = stacks.(0) in
  let recipients =
    Array.to_list (Array.sub stacks 1 k) |> List.map Stack.self
  in
  Engine.at engine (Sim_time.ms 1) (fun () ->
      Stack.inject_partial_multicast sender 1 ~recipients);
  Engine.at engine (Sim_time.ms 2) (fun () ->
      Engine.crash engine (Stack.self sender));
  Engine.run ~until:(Sim_time.seconds 1) engine;
  let survivor_count = group_size - 1 in
  let survivors_with =
    Array.to_list delivered |> List.tl |> List.filter Fun.id |> List.length
  in
  let all = survivors_with = survivor_count in
  let none = survivors_with = 0 in
  (* the sender always applied locally (that is the Section 2 anomaly) *)
  (all, delivered.(0) && none, (not all) && not none)

let tpc_trial ~seed ~group_size =
  let net = Net.create ~latency:(Net.Uniform (500, 3_000)) () in
  let engine = Engine.create ~seed ~net () in
  let applied = Array.make group_size false in
  let pids =
    Array.init group_size (fun i ->
        Engine.spawn engine ~name:(Printf.sprintf "n%d" i) (fun _ _ -> ()))
  in
  let nodes =
    Array.init group_size (fun i ->
        Tpc.create_node ~engine ~self:pids.(i) ~inject:Fun.id
          ~can_apply:(fun ~tx:_ _ -> true)
          ~apply:(fun ~tx:_ _ -> applied.(i) <- true)
          ())
  in
  Array.iteri
    (fun i pid ->
      Engine.set_handler engine pid (fun _ env ->
          Tpc.handle nodes.(i) env.Engine.payload))
    pids;
  Engine.at engine (Sim_time.ms 1) (fun () ->
      ignore
        (Tpc.submit nodes.(0)
           ~participants:(Array.to_list (Array.map (fun p -> (p, [ () ])) pids))
           ~on_done:(fun ~tx:_ ~committed:_ -> ()));
      (* the coordinator dies before any vote can reach it *)
      Engine.crash engine pids.(0));
  Engine.run ~until:(Sim_time.seconds 1) engine;
  let survivors_with =
    Array.to_list applied |> List.tl |> List.filter Fun.id |> List.length
  in
  let all = survivors_with = group_size - 1 in
  let none = survivors_with = 0 in
  (all, applied.(0) && none, (not all) && not none)

let accumulate scheme k trials results =
  let survivors_have = ref 0 and diverged = ref 0 and partial = ref 0 in
  List.iter
    (fun (all, div, part) ->
      if all then incr survivors_have;
      if div then incr diverged;
      if part then incr partial)
    results;
  { scheme; k; trials; survivors_have_update = !survivors_have;
    sender_diverged = !diverged; survivor_partial = !partial }

let sweep ?(group_size = 4) ?(trials = 20) ?(seed = 51L) () =
  let catocs_points =
    List.map
      (fun k ->
        let results =
          List.init trials (fun t ->
              catocs_trial
                ~seed:(Int64.add seed (Int64.of_int ((k * 1000) + t)))
                ~group_size ~k)
        in
        accumulate "catocs cbcast" k trials results)
      [ 0; 1; 2; 3 ]
  in
  let tpc_results =
    List.init trials (fun t ->
        tpc_trial ~seed:(Int64.add seed (Int64.of_int (9000 + t))) ~group_size)
  in
  catocs_points @ [ accumulate "2pc (coordinator crash)" 0 trials tpc_results ]

let table points =
  let rows =
    List.map
      (fun p ->
        [ p.scheme;
          Table.cell_int p.k;
          Table.cell_int p.trials;
          Table.cell_int p.survivors_have_update;
          Table.cell_int p.sender_diverged;
          Table.cell_int p.survivor_partial ])
      points
  in
  Table.make ~id:"durability-gap"
    ~title:"sender crash mid-multicast: who ends up with the update?"
    ~paper_ref:"Section 2 (atomic but not durable) / Section 4.4 write-safety"
    ~columns:
      [ "scheme"; "k reached"; "trials"; "all survivors have it";
        "sender diverged"; "partial (atomicity broken)" ]
    ~notes:
      [ "k=0 reproduces the paper's special case: apply locally, crash, nobody else sees it";
        "k>=1: the view-change flush re-supplies the update to every survivor";
        "2PC: the un-acknowledged update simply aborts; no state diverges anywhere" ]
    rows

let run () = table (sweep ())
