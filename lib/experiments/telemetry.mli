(** Registered telemetry scenarios: the runs the [repro-trace] CLI can
    export.

    Each scenario replays one of the paper's figure executions (or the
    Section 5 scaling run) with a telemetry log attached to the group and
    returns the filled log plus the pid-to-name mapping for the exporters'
    track labels. Runs are deterministic: a scenario exports byte-identical
    traces on every invocation (the golden-file tests rely on this). *)

type scenario = {
  name : string;  (** CLI identifier, e.g. ["fig2-shop-floor"] *)
  descr : string;
  run :
    unit ->
    Repro_obs.Log.t * (int * string) list * Repro_obs.Registry.snapshot;
      (** the filled log, the pid-to-name mapping, and the merged per-stack
          protocol-metrics snapshot (empty for scenarios that do not enable
          [Config.metrics]; the fig1 family does, so the watchdogs'
          copy-conservation rule has counters to audit) *)
}

val all : scenario list
val find : string -> scenario option
