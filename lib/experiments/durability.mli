(** E14 — Section 2: atomic but not durable.

    "A process can send a message to its process group, receive and act on
    the message locally and then fail, without any other members receiving
    the message." We multicast an update that reaches only [k] remote
    members before the sender crashes and ask whether the surviving group
    ends up with it — the Deceit write-safety-level trade-off — and compare
    the transactional behaviour (a 2PC coordinator crash simply aborts:
    no survivor diverges and the client was never acknowledged). *)

type point = {
  scheme : string;
  k : int;  (** remote members reached before the crash *)
  trials : int;
  survivors_have_update : int;
      (** trials where every survivor delivered the update *)
  sender_diverged : int;
      (** trials where the crashed sender had applied an update the
          survivors never saw *)
  survivor_partial : int;
      (** trials where some but not all survivors saw it (atomicity
          violation — expected 0: the flush re-supplies) *)
}

val sweep : ?group_size:int -> ?trials:int -> ?seed:int64 -> unit -> point list

val table : point list -> Table.t
val run : unit -> Table.t
