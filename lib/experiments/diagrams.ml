module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Wire = Repro_catocs.Wire
module Transport = Repro_catocs.Transport
module Shop_floor = Repro_apps.Shop_floor
module Fire_alarm = Repro_apps.Fire_alarm
module Exec = Repro_analyze.Exec
module Recorder = Repro_analyze.Exec.Recorder

(* --- Figure 1 ------------------------------------------------------------- *)

type fig1_outcome = {
  diagram : string;
  deliveries : (int * string list) list;  (* member index, delivery order *)
  registry_snapshot : Repro_obs.Registry.snapshot;
      (* merged over the three stacks; empty unless ~metrics:true *)
}

let fig1_run ?(engine_impl = Engine.Sequential) ?obs ?recorder
    ?(causal_impl = Config.Vector_causal) ?(metrics = false) () =
  let net = Net.create ~latency:(Net.Uniform (1_000, 3_000)) () in
  (* the ASCII trace (and its pp_msg pretty-printer) and the shared causal
     graph are sequential-only conveniences; the telemetry log (when
     synchronized) carries everything the cross-domain consumers need *)
  let parallel =
    match engine_impl with
    | Engine.Sequential -> false
    | Engine.Parallel _ -> true
  in
  let engine =
    if parallel then Engine.create ~impl:engine_impl ~seed:3L ~net ()
    else
      Engine.create ~impl:engine_impl ~seed:3L ~net
        ~pp_msg:(Transport.pp_packet (Wire.pp Format.pp_print_string)) ()
  in
  if not parallel then Trace.set_enabled (Engine.trace engine) true;
  let stacks =
    Stack.create_group ?obs ~engine
      ~config:
        (Config.with_causal_impl causal_impl
           { Config.default with
             Config.ordering = Config.Causal;
             track_graph = not parallel; metrics })
      ~names:[ "P"; "Q"; "R" ]
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  let p = stacks.(0) and q = stacks.(1) and r = stacks.(2) in
  (match recorder with
   | Some rc ->
     Array.iteri
       (fun i stack ->
         Recorder.add_process rc ~pid:(Stack.self stack)
           ~name:[| "P"; "Q"; "R" |].(i))
       stacks
   | None -> ());
  let uids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let record_send stack m =
    match recorder with
    | None -> ()
    | Some rc ->
      Hashtbl.replace uids m
        (Recorder.note_send rc ~sender:(Stack.self stack)
           ~at:(Engine.now engine) ())
  in
  let multicast stack m =
    record_send stack m;
    Stack.multicast stack m
  in
  let deliveries = Array.make 3 [] in
  Array.iteri
    (fun i stack ->
      Stack.set_callbacks stack
        { Stack.null_callbacks with
          Stack.deliver =
            (fun ~sender:_ m ->
              (match (recorder, Hashtbl.find_opt uids m) with
               | Some rc, Some uid ->
                 Recorder.note_delivery rc ~pid:(Stack.self stack) ~uid
                   ~at:(Engine.now engine)
               | _, _ -> ());
              deliveries.(i) <- m :: deliveries.(i);
              (* P reacts to m1 by sending m2: m1 happens-before m2 *)
              if i = 0 && m = "m1" then multicast p "m2") })
    stacks;
  Engine.at engine (Sim_time.ms 1) (fun () -> multicast q "m1");
  Engine.at engine (Sim_time.ms 8) (fun () -> multicast r "m3");
  Engine.at engine (Sim_time.ms 9) (fun () -> multicast q "m4");
  Engine.run ~until:(Sim_time.ms 18) engine;
  { diagram =
      Trace.render_diagram ~exclude_substrings:[ "gossip"; "ack" ] ~limit:80
        (Engine.trace engine) ~names:[| "P"; "Q"; "R" |];
    deliveries = List.init 3 (fun i -> (i, List.rev deliveries.(i)));
    registry_snapshot =
      Repro_obs.Registry.merge_all
        (Array.to_list
           (Array.map
              (fun s -> Repro_obs.Registry.snapshot (Stack.registry s))
              stacks)) }

let fig1_causal_order () = (fig1_run ()).diagram

let index_of item list =
  let rec scan i = function
    | [] -> None
    | x :: rest -> if x = item then Some i else scan (i + 1) rest
  in
  scan 0 list

let fig1_table () =
  let outcome = fig1_run () in
  let before a b order =
    match (index_of a order, index_of b order) with
    | Some i, Some j -> i < j
    | _ -> false
  in
  let everywhere f = List.for_all (fun (_, order) -> f order) outcome.deliveries in
  let rows =
    [ [ "m1 delivered before m2 at every process";
        Table.cell_bool true;
        Table.cell_bool (everywhere (before "m1" "m2")) ];
      [ "m1 delivered before m4 at every process";
        Table.cell_bool true;
        Table.cell_bool (everywhere (before "m1" "m4")) ];
      [ "all four messages delivered everywhere";
        Table.cell_bool true;
        Table.cell_bool
          (everywhere (fun order -> List.length order = 4)) ];
      [ "m3/m4 order may differ between processes (concurrent)";
        "allowed";
        (let orders =
           List.map (fun (_, order) -> before "m3" "m4" order) outcome.deliveries
         in
         if List.for_all Fun.id orders || List.for_all not orders then
           "same this run"
         else "differs") ] ]
  in
  Table.make ~id:"fig1-causal-order"
    ~title:"Figure 1 event diagram: causal delivery properties"
    ~paper_ref:"Figure 1 / Section 2"
    ~columns:[ "property"; "expected"; "observed" ]
    rows

(* --- Figures 2 and 3: seed-search for an anomalous run -------------------- *)

let fig2_hidden_channel () =
  let rec search seed =
    if seed > 200 then "no anomalous seed found in range"
    else begin
      let config =
        { Shop_floor.default_config with
          Shop_floor.seed = Int64.of_int seed; trials = 1 }
      in
      let result = Shop_floor.run ~capture_diagram:true config in
      if result.Shop_floor.naive_anomalies > 0 then
        match result.Shop_floor.diagram with
        | Some d ->
          Printf.sprintf "(seed %d: observer's last notification contradicts the database)\n%s"
            seed d
        | None -> search (seed + 1)
      else search (seed + 1)
    end
  in
  search 1

let fig3_external_channel () =
  let rec search seed =
    if seed > 200 then "no anomalous seed found in range"
    else begin
      let config =
        { Fire_alarm.default_config with
          Fire_alarm.seed = Int64.of_int seed; trials = 1 }
      in
      let result = Fire_alarm.run ~capture_diagram:true config in
      if result.Fire_alarm.naive_anomalies > 0 then
        match result.Fire_alarm.diagram with
        | Some d ->
          Printf.sprintf
            "(seed %d: observer Q's last received report is \"fire out\")\n%s" seed d
        | None -> search (seed + 1)
      else search (seed + 1)
    end
  in
  search 1

(* --- recorded executions for the causal sanitizer -------------------------- *)

let fig1_exec ?causal_impl () =
  let recorder =
    Recorder.create ~ordering:Exec.Causal_order ~label:"fig1 causal order" ()
  in
  ignore (fig1_run ~recorder ?causal_impl ());
  Recorder.exec recorder

(* Shared seed-search shell for the Figure 2/3 anomaly executions: run the
   instrumented app per seed until the naive observer shows the anomaly, and
   return that seed's recording (the last tried recording as a fallback —
   its channel edges are still declared, only the observed inversion may be
   missing). *)
let search_exec ~label ~anomalous run_seed =
  let rec search seed =
    let recorder =
      Recorder.create ~ordering:Exec.Causal_order
        ~label:(Printf.sprintf "%s seed %d" label seed)
        ()
    in
    let found = anomalous (run_seed ~recorder seed) in
    if found || seed >= 200 then Recorder.exec recorder else search (seed + 1)
  in
  search 1

let fig2_exec ?(causal_impl = Config.Vector_causal) () =
  search_exec ~label:"fig2 shop-floor"
    ~anomalous:(fun r -> r.Shop_floor.naive_anomalies > 0)
    (fun ~recorder seed ->
      Shop_floor.run ~recorder
        { Shop_floor.default_config with
          Shop_floor.seed = Int64.of_int seed; trials = 1; causal_impl })

let fig3_exec ?(causal_impl = Config.Vector_causal) () =
  search_exec ~label:"fig3 fire-alarm"
    ~anomalous:(fun r -> r.Fire_alarm.naive_anomalies > 0)
    (fun ~recorder seed ->
      Fire_alarm.run ~recorder
        { Fire_alarm.default_config with
          Fire_alarm.seed = Int64.of_int seed; trials = 1; causal_impl })
