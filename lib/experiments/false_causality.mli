(** E5 — Section 3.4: false causality delay.

    A group where all traffic is semantically independent (each sender's
    stream means nothing to the others), so {e any} delivery delay imposed
    by the causal order is false causality: the happens-before relation
    couples streams merely because their messages were received. We compare
    the same workload under FIFO (no coupling), causal, and total ordering
    while sweeping network jitter. *)

type point = {
  ordering : Repro_catocs.Config.ordering;
  jitter_max_ms : int;
  mean_queue_wait_us : float;  (** time messages sat in ordering queues *)
  delayed_fraction : float;  (** messages that waited at all *)
  transit_p99_us : float;
  header_bytes_per_msg : float;
}

val sweep :
  ?group_size:int -> ?jitters_ms:int list -> ?seed:int64 -> unit -> point list

val record :
  ?group_size:int ->
  ?ordering:Repro_catocs.Config.ordering ->
  ?jitter_max_ms:int ->
  ?seed:int64 ->
  ?duration:Sim_time.t ->
  unit ->
  Repro_analyze.Exec.t
(** An instrumented run of the same workload for the causal sanitizer: each
    multicast declares an empty semantic dependency set ([semantic = Some \[\]]
    — the streams are independent by construction), so the analyzer's
    false-causality detector can count exactly how much of the enforced
    context was unnecessary. *)

val table : point list -> Table.t
val run : unit -> Table.t
