module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Metrics = Repro_catocs.Metrics

type point = {
  group_size : int;
  flush_duration_ms : float;
  view_change_control_msgs : int;
  dropped_at_view_change : int;
  post_change_delivery_ok : bool;
}

type run_outcome = {
  flush_messages : int;
  suppressed_us : int;
  dropped : int;
  probe_delivered : int;
}

let run_once ~seed ~group_size ~crash =
  let net = Net.create ~latency:(Net.Uniform (500, 4_000)) () in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering = Config.Causal } in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  let probe_delivered = ref 0 in
  Array.iteri
    (fun i stack ->
      Stack.set_callbacks stack
        { Stack.null_callbacks with
          Stack.deliver =
            (fun ~sender:_ v -> if v = -1 && i > 0 then incr probe_delivered) };
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 173)))
          ~period:(Sim_time.ms 10)
          (fun () -> Stack.multicast stack i)
      in
      Engine.at engine (Sim_time.ms 600) cancel)
    stacks;
  if crash then
    Engine.at engine (Sim_time.ms 300) (fun () ->
        Engine.crash engine (Stack.self stacks.(group_size - 1)));
  (* a probe after things settle: does the group still deliver? *)
  Engine.at engine (Sim_time.ms 700) (fun () -> Stack.multicast stacks.(0) (-1));
  Engine.run ~until:(Sim_time.seconds 1) engine;
  let flush_msgs = ref 0 and suppressed = ref 0 and dropped = ref 0 in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      flush_msgs := !flush_msgs + m.Metrics.flush_messages;
      suppressed := max !suppressed m.Metrics.suppressed_us;
      dropped := !dropped + m.Metrics.dropped_at_view_change)
    stacks;
  { flush_messages = !flush_msgs; suppressed_us = !suppressed;
    dropped = !dropped; probe_delivered = !probe_delivered }

let measure ~seed group_size =
  let with_crash = run_once ~seed ~group_size ~crash:true in
  let survivors_minus_sender = group_size - 2 in
  { group_size;
    flush_duration_ms = float_of_int with_crash.suppressed_us /. 1000.0;
    view_change_control_msgs = with_crash.flush_messages;
    dropped_at_view_change = with_crash.dropped;
    post_change_delivery_ok =
      with_crash.probe_delivered >= survivors_minus_sender }

let sweep ?(sizes = [ 4; 8; 16; 32 ]) ?(seed = 41L) () =
  List.map (fun n -> measure ~seed n) sizes

let table points =
  let rows =
    List.map
      (fun p ->
        [ Table.cell_int p.group_size;
          Table.cell_float ~decimals:2 p.flush_duration_ms;
          Table.cell_int p.view_change_control_msgs;
          Table.cell_int p.dropped_at_view_change;
          Table.cell_bool p.post_change_delivery_ok ])
      points
  in
  Table.make ~id:"membership-scaling"
    ~title:"view-change (flush) cost vs group size"
    ~paper_ref:"Section 5 (membership change protocols)"
    ~columns:
      [ "N"; "send suppression (ms)"; "view-change msgs"; "dropped msgs";
        "delivery after change" ]
    ~notes:
      [ "view-change msgs = flush + flush-done + new-view messages (unstable re-sends included)";
        "suppression: members queue application multicasts for the whole flush" ]
    rows

let run () = table (sweep ())
