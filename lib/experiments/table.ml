type t = {
  id : string;
  title : string;
  paper_ref : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~paper_ref ~columns ?(notes = []) rows =
  { id; title; paper_ref; columns; rows; notes }

let render ppf t =
  let widths = Array.of_list (List.map String.length t.columns) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < Array.length widths && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    t.rows;
  let pad i s =
    let w = if i < Array.length widths then widths.(i) else String.length s in
    s ^ String.make (max 0 (w - String.length s)) ' '
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * max 1 (Array.length widths)) - 1
  in
  Format.fprintf ppf "== %s: %s@." t.id t.title;
  Format.fprintf ppf "   (%s)@." t.paper_ref;
  let print_row row =
    Format.fprintf ppf "   %s@."
      (String.concat " | " (List.mapi pad row))
  in
  print_row t.columns;
  Format.fprintf ppf "   %s@." (String.make total_width '-');
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "   note: %s@." n) t.notes;
  Format.fprintf ppf "@."

let print t = render Format.std_formatter t

let cell_int = string_of_int

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "n/a" else Printf.sprintf "%.*f" decimals x

let cell_bool b = if b then "yes" else "no"

let cell_pct x =
  if Float.is_nan x then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. x)

let cell_us_as_ms us =
  if Float.is_nan us then "n/a" else Printf.sprintf "%.2fms" (us /. 1000.0)

let fit_log_slope points =
  let usable =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      points
  in
  match usable with
  | [] | [ _ ] -> nan
  | _ ->
    let n = float_of_int (List.length usable) in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 usable in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 usable in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 usable in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 usable in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
