type entry = {
  id : string;
  description : string;
  paper_ref : string;
  run : unit -> Table.t list;
}

let one f () = [ f () ]

let all =
  [
    { id = "fig1-causal-order";
      description = "Figure 1 event diagram properties under CBCAST";
      paper_ref = "Figure 1 / Section 2";
      run = one Diagrams.fig1_table };
    { id = "fig2-hidden-channel";
      description = "shop floor: shared-database hidden channel anomaly";
      paper_ref = "Figure 2 / Section 3 limitation 1";
      run = one App_experiments.fig2_hidden_channel };
    { id = "fig3-external-channel";
      description = "fire alarm: external-channel anomaly, causal and total";
      paper_ref = "Figure 3 / Section 3 limitation 1";
      run = one App_experiments.fig3_external_channel };
    { id = "fig4-trading";
      description = "trading floor: false crossings vs dependency fields";
      paper_ref = "Figure 4 / Section 4.1, limitation 3";
      run = one App_experiments.fig4_trading };
    { id = "netnews";
      description = "netnews inquiry/response ordering schemes";
      paper_ref = "Section 4.1";
      run = one App_experiments.netnews };
    { id = "false-causality";
      description = "ordering-queue delay on independent traffic";
      paper_ref = "Section 3.4 limitation 4";
      run = one False_causality.run };
    { id = "buffering-scaling";
      description = "unstable-message buffering growth with group size";
      paper_ref = "Section 5";
      run = (fun () -> [ Scaling.run (); Scaling.loaded_table () ]) };
    { id = "membership-scaling";
      description = "view-change (flush) cost with group size";
      paper_ref = "Section 5";
      run = one Membership.run };
    { id = "overhead";
      description = "per-message ordering overhead by discipline and size";
      paper_ref = "Section 3.4 limitation 4";
      run = one Overhead.run };
    { id = "predicate-detection";
      description = "consistent cuts: CATOCS vs Chandy-Lamport markers";
      paper_ref = "Section 4.2";
      run = one App_experiments.predicate_detection };
    { id = "replicated-data";
      description = "Deceit-style CBCAST store vs HARP-style transactions";
      paper_ref = "Sections 4.3-4.4";
      run = one App_experiments.replicated_data };
    { id = "serialization";
      description = "grouped updates: split transfers vs atomic transactions";
      paper_ref = "Section 3 limitation 2";
      run = one App_experiments.serialization };
    { id = "durability-gap";
      description = "sender crash mid-multicast: atomic but not durable";
      paper_ref = "Section 2 / Section 4.4";
      run = one Durability.run };
    { id = "linearizability";
      description = "replicated register: read-any vs read-primary";
      paper_ref = "Section 4.4";
      run = one App_experiments.linearizability };
    { id = "real-time";
      description = "oven monitoring: tracking error vs loss";
      paper_ref = "Section 4.6";
      run = one App_experiments.real_time };
    { id = "drilling";
      description = "drilling cell scheduling: CATOCS vs central controller";
      paper_ref = "Appendix 9.1";
      run = one App_experiments.drilling };
    { id = "group-state";
      description = "a causal group per inquiry: state and gossip explosion";
      paper_ref = "Section 4.1";
      run = one Group_state.run };
    { id = "partitioning";
      description = "one causal group vs bridged subgroups (causal domains)";
      paper_ref = "Section 5";
      run = one Partitioning.run };
    { id = "gossip-ablation";
      description = "stability gossip period: buffering vs control traffic";
      paper_ref = "Section 5 (ablation)";
      run = one Ablations.gossip_period };
    { id = "piggyback-ablation";
      description = "delay dependants vs append causal history";
      paper_ref = "Section 3.4 footnote 4";
      run = one Ablations.piggyback };
    { id = "distribution-ablation";
      description = "anomaly rates across latency distributions";
      paper_ref = "Figures 2-4 (ablation)";
      run = one Ablations.latency_distribution };
    { id = "rpc-deadlock";
      description = "RPC deadlock detection message cost";
      paper_ref = "Appendix 9.2";
      run = one App_experiments.rpc_deadlock };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let diagrams =
  [ ("fig1", Diagrams.fig1_causal_order);
    ("fig2", Diagrams.fig2_hidden_channel);
    ("fig3", Diagrams.fig3_external_channel) ]

let run_everything ppf =
  Format.fprintf ppf
    "Reproduction of Cheriton & Skeen, \"Understanding the Limitations of@ \
     Causally and Totally Ordered Communication\" (SOSP 1993)@.@.";
  Format.fprintf ppf "--- event diagrams -------------------------------------@.@.";
  List.iter
    (fun (id, render) ->
      Format.fprintf ppf ">> %s@.%s@." id (render ()))
    diagrams;
  Format.fprintf ppf "--- experiments ----------------------------------------@.@.";
  List.iter
    (fun entry ->
      List.iter (fun table -> Table.render ppf table) (entry.run ()))
    all
