module Config = Repro_catocs.Config
module Stack = Repro_catocs.Stack
module Metrics = Repro_catocs.Metrics
module Exec = Repro_analyze.Exec
module Recorder = Repro_analyze.Exec.Recorder

type point = {
  ordering : Config.ordering;
  jitter_max_ms : int;
  mean_queue_wait_us : float;
  delayed_fraction : float;
  transit_p99_us : float;
  header_bytes_per_msg : float;
}

let measure ~seed ~group_size ~ordering ~jitter_max_ms =
  let net =
    Net.create ~latency:(Net.Uniform (500, jitter_max_ms * 1_000)) ()
  in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering } in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  (* independent periodic senders: no semantic relation between streams *)
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 313)))
          ~period:(Sim_time.ms 8)
          (fun () -> Stack.multicast stack i)
      in
      Engine.at engine (Sim_time.seconds 1) cancel)
    stacks;
  Engine.run ~until:(Sim_time.add (Sim_time.seconds 1) (Sim_time.ms 500)) engine;
  let wait = Stats.Summary.create () in
  let transit = Stats.Summary.create () in
  let delivered = ref 0 and delayed = ref 0 in
  let header_bytes = ref 0 and multicasts = ref 0 in
  Array.iter
    (fun stack ->
      let m = Stack.metrics stack in
      delivered := !delivered + m.Metrics.delivered;
      delayed := !delayed + m.Metrics.delayed_messages;
      header_bytes := !header_bytes + m.Metrics.header_bytes;
      multicasts := !multicasts + m.Metrics.multicasts_sent;
      if Stats.Summary.count m.Metrics.delivery_delay_us > 0 then
        Stats.Summary.add wait (Stats.Summary.mean m.Metrics.delivery_delay_us);
      if Stats.Summary.count m.Metrics.transit_us > 0 then
        Stats.Summary.add transit
          (Stats.Summary.percentile m.Metrics.transit_us 0.99))
    stacks;
  { ordering; jitter_max_ms;
    mean_queue_wait_us = Stats.Summary.mean wait;
    delayed_fraction = float_of_int !delayed /. float_of_int (max 1 !delivered);
    transit_p99_us = Stats.Summary.mean transit;
    header_bytes_per_msg =
      float_of_int !header_bytes
      /. float_of_int (max 1 (!multicasts * (group_size - 1))) }

(* The analyzer-facing variant of [measure]: the same independent periodic
   streams, but each multicast carries a recorder uid as payload and declares
   an empty semantic dependency set — so every context entry the causal
   order enforces (beyond the sender's own stream) is false causality by
   construction, and the analyzer can quantify it per message. *)
let record ?(group_size = 4) ?(ordering = Config.Causal) ?(jitter_max_ms = 10)
    ?(seed = 21L) ?(duration = Sim_time.ms 200) () =
  let discipline =
    match (ordering : Config.ordering) with
    | Config.Fifo -> Exec.Fifo_order
    | Config.Causal -> Exec.Causal_order
    | Config.Total_sequencer | Config.Total_lamport -> Exec.Total_order
  in
  let recorder =
    Recorder.create ~ordering:discipline
      ~label:
        (Printf.sprintf "false-causality %s jitter=%dms"
           (Config.ordering_name ordering) jitter_max_ms)
      ()
  in
  let net =
    Net.create ~latency:(Net.Uniform (500, jitter_max_ms * 1_000)) ()
  in
  let engine = Engine.create ~seed ~net () in
  let config = { Config.default with Config.ordering } in
  let stacks =
    Stack.create_group ~engine ~config
      ~names:(List.init group_size (fun i -> Printf.sprintf "p%d" i))
      ~make_callbacks:(fun _ -> Stack.null_callbacks) ()
    |> Array.of_list
  in
  Array.iter
    (fun stack ->
      let pid = Stack.self stack in
      Recorder.add_process recorder ~pid ~name:(Engine.name engine pid);
      Stack.set_callbacks stack
        { Stack.null_callbacks with
          Stack.deliver =
            (fun ~sender:_ uid ->
              Recorder.note_delivery recorder ~pid ~uid
                ~at:(Engine.now engine)) })
    stacks;
  Array.iteri
    (fun i stack ->
      let cancel =
        Engine.every engine ~owner:(Stack.self stack)
          ~start:(Sim_time.us (1_000 + (i * 313)))
          ~period:(Sim_time.ms 8)
          (fun () ->
            let uid =
              Recorder.note_send recorder ~semantic:[]
                ~sender:(Stack.self stack) ~at:(Engine.now engine) ()
            in
            Stack.multicast stack uid)
      in
      Engine.at engine duration cancel)
    stacks;
  Engine.run ~until:(Sim_time.add duration (Sim_time.ms 300)) engine;
  Recorder.exec recorder

let sweep ?(group_size = 8) ?(jitters_ms = [ 2; 10; 30 ]) ?(seed = 21L) () =
  List.concat_map
    (fun jitter_max_ms ->
      List.map
        (fun ordering -> measure ~seed ~group_size ~ordering ~jitter_max_ms)
        [ Config.Fifo; Config.Causal; Config.Total_sequencer ])
    jitters_ms

let table points =
  let rows =
    List.map
      (fun p ->
        [ Config.ordering_name p.ordering;
          Table.cell_int p.jitter_max_ms;
          Table.cell_us_as_ms p.mean_queue_wait_us;
          Table.cell_pct p.delayed_fraction;
          Table.cell_us_as_ms p.transit_p99_us;
          Table.cell_float ~decimals:1 p.header_bytes_per_msg ])
      points
  in
  Table.make ~id:"false-causality"
    ~title:"ordering-queue delay on semantically independent traffic"
    ~paper_ref:"Section 3.4 (limitation 4: false causality)"
    ~columns:
      [ "ordering"; "jitter max (ms)"; "mean queue wait"; "delayed msgs";
        "transit p99"; "header B/msg" ]
    ~notes:
      [ "all streams are independent: any wait under causal/total order is false causality";
        "fifo = per-sender order only (the non-CATOCS baseline)" ]
    rows

let run () = table (sweep ())
